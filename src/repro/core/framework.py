"""The RIPPLE query-processing templates (Algorithms 1–3).

One routine, :func:`_process`, implements Algorithm 3 faithfully; ``fast``
(Algorithm 1) and ``slow`` (Algorithm 2) are its ``r = 0`` and
``r = infinity`` degenerations, exposed as :func:`run_fast`,
:func:`run_slow` and :func:`run_ripple`.

``_process`` evaluates the depth-first traversal with an explicit work
stack of :class:`_Frame` records rather than native recursion, so a
sequential (``r = SLOW``) pass across a chain-shaped overlay — whose
depth equals the network size — neither overflows the interpreter stack
nor requires mutating the global recursion limit.  The evaluation order
(and therefore every statistic) is identical to the recursive
formulation.

The framework is overlay-agnostic: a peer is anything satisfying
:class:`PeerLike` — an id, a :class:`~repro.common.store.LocalStore`, and a
list of :class:`Link` objects pairing a neighbor with its region.  It is
also query-agnostic: all query logic lives in a
:class:`~repro.core.handler.QueryHandler`.

Cost accounting follows the paper's analysis (see
:mod:`repro.net.context`): forwarding a query is one hop; a sequential
iteration waits ``1 + child latency``; parallel iterations overlap and the
slowest dominates.  These choices reproduce Lemmas 1–3 exactly, which the
test-suite checks against :mod:`repro.core.analysis` on complete overlays.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Hashable, Protocol, Sequence, runtime_checkable

from ..common.store import LocalStore
from ..net.context import QueryContext, QueryResult
from ..obs.trace import TraceSink, state_size
from .handler import QueryHandler
from .regions import Region

__all__ = ["Link", "OverlayLike", "PeerLike", "physical_id", "run_fast",
           "run_slow", "run_ripple", "SLOW"]

#: Ripple parameter value that never runs out: every peer uses the
#: sequential loop, i.e. Algorithm 2.  (Any r > maximum link count works.)
SLOW = sys.maxsize


@dataclass(frozen=True)
class Link:
    """A neighbor plus the region this peer assigns to it."""

    peer: "PeerLike"
    region: Region


@runtime_checkable
class PeerLike(Protocol):
    """What the templates require of an overlay peer.

    A peer may additionally expose ``physical_id`` when its logical
    identity differs from the machine executing it (a replica holder
    promoted to stand in for a dead owner, see
    :class:`~repro.overlays.replication.PromotedPeer`); liveness checks
    go through :func:`physical_id`, which falls back to ``peer_id``.
    """

    peer_id: Hashable
    store: LocalStore

    def links(self) -> Sequence[Link]:  # pragma: no cover - protocol
        ...


@runtime_checkable
class OverlayLike(Protocol):
    """What network-level tooling requires of an overlay.

    Fault planning, replication, and the failure detector only ever need
    to enumerate the peers; overlay-specific structure (tree, ring,
    zones) stays behind this boundary.
    """

    def peers(self) -> Sequence[PeerLike]:  # pragma: no cover - protocol
        ...


def physical_id(peer: PeerLike) -> Hashable:
    """The id of the machine executing ``peer`` (for liveness checks).

    Ordinary peers execute themselves; a promoted replica holder executes
    under the dead owner's logical ``peer_id`` but crashes (or not) as
    itself.
    """
    return getattr(peer, "physical_id", peer.peer_id)


def run_ripple(
    initiator: PeerLike,
    handler: QueryHandler,
    r: int,
    *,
    restriction: Region,
    strict: bool = True,
    initial_state: Any | None = None,
    sink: TraceSink | None = None,
    executor: Any | None = None,
) -> QueryResult:
    """Process a rank query with ripple parameter ``r`` (Algorithm 3).

    ``restriction`` is the initial restriction area — the entire domain for
    a regular invocation.  ``strict`` controls whether a double visit is a
    simulator error (exact region partitions) or silently deduped
    (conservative covers, e.g. CAN frustums).  ``initial_state`` overrides
    the handler's neutral initial global state — the paper's
    diversification loop passes an explicit threshold this way
    (Algorithm 23, line 10).  ``sink`` attaches a trace recorder (see
    :mod:`repro.obs.trace`); the default records nothing at zero cost.
    ``executor`` swaps the traversal engine for anything
    signature-compatible with :func:`execute` — the arena's batched
    wavefront engine is the in-repo alternative.
    """
    ctx = QueryContext(strict=strict)
    if sink is not None:
        ctx.sink = sink
    engine = executor if executor is not None else execute
    return engine(initiator, handler, r, restriction=restriction, ctx=ctx,
                  initial_state=initial_state)


def execute(
    initiator: PeerLike,
    handler: QueryHandler,
    r: int,
    *,
    restriction: Region,
    ctx: QueryContext,
    initial_state: Any | None = None,
    base_latency: int = 0,
    answers_to: Hashable | None = None,
    parent_span: int | None = None,
) -> QueryResult:
    """Low-level entry point: run Algorithm 3 over a caller-owned context.

    Query drivers that prepend a routing/seeding phase (see
    :mod:`repro.queries.drivers`) mark the peers already processed in
    ``ctx``, account the hops already spent in ``base_latency``, and name
    the peer that ultimately receives the answers in ``answers_to`` (the
    real initiator, when the ripple phase starts at a routed-to seed).
    When a trace sink is attached, ``base_latency`` doubles as the virtual
    start time of the ripple phase and ``parent_span`` nests its spans
    under the driver's query span.
    """
    if r < 0:
        raise ValueError(f"ripple parameter must be non-negative, got {r}")
    state = handler.initial_state() if initial_state is None else initial_state
    initiator_id = initiator.peer_id if answers_to is None else answers_to
    _, latency = _process(ctx, handler, initiator, state,
                          restriction, r, initiator_id=initiator_id,
                          top_level=True, base_time=base_latency,
                          parent_span=parent_span)
    answer = handler.finalize(ctx.collected_answers)
    return QueryResult(answer=answer, stats=ctx.stats(base_latency + latency))


def run_fast(initiator: PeerLike, handler: QueryHandler, *,
             restriction: Region, strict: bool = True,
             sink: TraceSink | None = None) -> QueryResult:
    """Latency-optimal processing (Algorithm 1): ripple with ``r = 0``."""
    return run_ripple(initiator, handler, 0,
                      restriction=restriction, strict=strict, sink=sink)


def run_slow(initiator: PeerLike, handler: QueryHandler, *,
             restriction: Region, strict: bool = True,
             sink: TraceSink | None = None) -> QueryResult:
    """Communication-optimal processing (Algorithm 2): unbounded ``r``."""
    return run_ripple(initiator, handler, SLOW,
                      restriction=restriction, strict=strict, sink=sink)


class _Frame:
    """One peer's suspended execution of Algorithm 3 on the work stack.

    A frame is created when the query reaches a peer, advances one link at
    a time (pushing a child frame per relevant link), and completes when
    its link list is exhausted — at which point its local answer ships and
    its upstream states flow into the parent frame.  Sequential frames
    (``r > 0``) fold each child response into their state before examining
    the next link (Alg. 3, lines 4-11); parallel frames (``r = 0``) keep
    the state they fanned out with and simply accumulate subtree states
    for the nearest sequential ancestor (lines 13-17 == Alg. 1).
    """

    __slots__ = ("peer", "received_state", "restriction", "r", "top_level",
                 "processes", "local_state", "gstate", "links", "index",
                 "latency", "upstream", "t0", "span")

    def __init__(self, ctx: QueryContext, handler: QueryHandler,
                 peer: PeerLike, received_state: Any, restriction: Region,
                 r: int, top_level: bool = False, t0: int = 0,
                 parent_span: int | None = None) -> None:
        self.peer = peer
        self.received_state = received_state
        self.restriction = restriction
        self.r = r
        self.top_level = top_level
        self.index = 0
        self.latency = 0
        #: Virtual arrival time of the query at this peer (hops since the
        #: query began), deriving trace timestamps from the analytic
        #: latency model; see :mod:`repro.obs.trace`.
        self.t0 = t0
        self.processes = ctx.begin_processing(peer.peer_id)
        if self.processes:
            self.local_state = handler.compute_local_state(
                peer.store, received_state)
        else:
            self.local_state = handler.neutral_local_state()
        self.gstate = handler.compute_global_state(received_state,
                                                   self.local_state)
        if ctx.sink.enabled:
            self.span = ctx.sink.begin_span(
                "process", peer.peer_id, t0, parent=parent_span,
                region=repr(restriction), r=r, processes=self.processes,
                state_size=state_size(self.local_state))
        else:
            self.span = 0
        if r > 0:
            self.links: list[Link] = sorted(
                peer.links(),
                key=lambda ln: handler.link_priority(ln.region))
            #: Parallel-mode accumulator of subtree states; sequential
            #: frames fold children into ``local_state`` and leave this
            #: empty (it was previously a ``None`` sentinel nothing read).
            self.upstream: list[Any] = []
        else:
            self.links = list(peer.links())
            self.upstream = [self.local_state] if self.processes else []

    def next_child(self, ctx: QueryContext,
                   handler: QueryHandler) -> "_Frame | None":
        """The frame for the next relevant link, or None when exhausted."""
        while self.index < len(self.links):
            link = self.links[self.index]
            self.index += 1
            sub = link.region.intersect(self.restriction)
            if sub is None:
                continue
            if not handler.is_link_relevant(sub, self.gstate):
                continue
            ctx.on_forward()
            # Sequential frames forward after folding earlier children
            # (latency so far elapsed); parallel forwards all leave at t0.
            send_t = self.t0 + (self.latency if self.r > 0 else 0)
            if ctx.sink.enabled:
                ctx.sink.event("forward", send_t, span=self.span,
                               target=link.peer.peer_id)
            return _Frame(ctx, handler, link.peer, self.gstate, sub,
                          self.r - 1 if self.r > 0 else 0,
                          t0=send_t + 1, parent_span=self.span or None)
        return None

    def receive(self, ctx: QueryContext, handler: QueryHandler,
                child_states: list[Any], child_latency: int) -> None:
        """Fold a completed child subtree into this frame."""
        if self.r > 0:
            ctx.on_response(len(child_states))
            self.latency += 1 + child_latency
            if ctx.sink.enabled:
                ctx.sink.event("response", self.t0 + self.latency,
                               span=self.span, count=len(child_states))
            self.local_state = handler.update_local_state(
                [self.local_state, *child_states])
            self.gstate = handler.compute_global_state(self.received_state,
                                                       self.local_state)
        else:
            self.latency = max(self.latency, 1 + child_latency)
            self.upstream.extend(child_states)

    def finish(self, ctx: QueryContext, handler: QueryHandler,
               initiator_id: Hashable) -> tuple[list[Any], int]:
        """Ship the local answer; return the states reported upstream."""
        if self.processes:
            answer = handler.compute_local_answer(self.peer.store,
                                                  self.local_state)
            if self.peer.peer_id == initiator_id:
                # The initiator's own qualifying tuples never cross the
                # network.
                ctx.collected_answers.append(answer)
            else:
                size = handler.answer_size(answer)
                ctx.on_answer(answer, size)
                if ctx.sink.enabled and size > 0:
                    ctx.sink.event("answer", self.t0 + self.latency,
                                   span=self.span, size=size)
        if ctx.sink.enabled:
            ctx.sink.end_span(self.span, self.t0 + self.latency,
                              state_size=state_size(self.local_state))
        if self.r > 0:
            upstream = [self.local_state] \
                if self.processes or not self.top_level else []
        else:
            upstream = self.upstream
        return upstream, self.latency


def _process(
    ctx: QueryContext,
    handler: QueryHandler,
    peer: PeerLike,
    global_state: Any,
    restriction: Region,
    r: int,
    *,
    initiator_id: Hashable,
    top_level: bool = False,
    base_time: int = 0,
    parent_span: int | None = None,
) -> tuple[list[Any], int]:
    """Algorithm 3, evaluated depth-first over an explicit work stack.

    Returns the local states the root peer contributes upstream — a single
    merged state in sequential mode, or every subtree state in parallel
    mode (the paper has fast-mode peers report directly to their nearest
    ``r = 1`` ancestor) — together with the critical-path latency of the
    subtree rooted at ``peer``.
    """
    stack = [_Frame(ctx, handler, peer, global_state, restriction, r,
                    top_level, t0=base_time, parent_span=parent_span)]
    while True:
        frame = stack[-1]
        child = frame.next_child(ctx, handler)
        if child is not None:
            stack.append(child)
            continue
        stack.pop()
        upstream, latency = frame.finish(ctx, handler, initiator_id)
        if not stack:
            return upstream, latency
        stack[-1].receive(ctx, handler, upstream, latency)
