"""The RIPPLE query-processing templates (Algorithms 1–3).

One recursive routine, :func:`_process`, implements Algorithm 3 faithfully;
``fast`` (Algorithm 1) and ``slow`` (Algorithm 2) are its ``r = 0`` and
``r = infinity`` degenerations, exposed as :func:`run_fast`,
:func:`run_slow` and :func:`run_ripple`.

The framework is overlay-agnostic: a peer is anything satisfying
:class:`PeerLike` — an id, a :class:`~repro.common.store.LocalStore`, and a
list of :class:`Link` objects pairing a neighbor with its region.  It is
also query-agnostic: all query logic lives in a
:class:`~repro.core.handler.QueryHandler`.

Cost accounting follows the paper's analysis (see
:mod:`repro.net.context`): forwarding a query is one hop; a sequential
iteration waits ``1 + child latency``; parallel iterations overlap and the
slowest dominates.  These choices reproduce Lemmas 1–3 exactly, which the
test-suite checks against :mod:`repro.core.analysis` on complete overlays.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Any, Hashable, Protocol, Sequence, runtime_checkable

from ..common.store import LocalStore
from ..net.context import QueryContext, QueryResult
from .handler import QueryHandler
from .regions import Region

__all__ = ["Link", "PeerLike", "run_fast", "run_slow", "run_ripple", "SLOW"]

#: Ripple parameter value that never runs out: every peer uses the
#: sequential loop, i.e. Algorithm 2.  (Any r > maximum link count works.)
SLOW = sys.maxsize

_MIN_RECURSION_LIMIT = 20_000


@dataclass(frozen=True)
class Link:
    """A neighbor plus the region this peer assigns to it."""

    peer: "PeerLike"
    region: Region


@runtime_checkable
class PeerLike(Protocol):
    """What the templates require of an overlay peer."""

    peer_id: Hashable
    store: LocalStore

    def links(self) -> Sequence[Link]:  # pragma: no cover - protocol
        ...


def run_ripple(
    initiator: PeerLike,
    handler: QueryHandler,
    r: int,
    *,
    restriction: Region,
    strict: bool = True,
    initial_state: Any | None = None,
) -> QueryResult:
    """Process a rank query with ripple parameter ``r`` (Algorithm 3).

    ``restriction`` is the initial restriction area — the entire domain for
    a regular invocation.  ``strict`` controls whether a double visit is a
    simulator error (exact region partitions) or silently deduped
    (conservative covers, e.g. CAN frustums).  ``initial_state`` overrides
    the handler's neutral initial global state — the paper's
    diversification loop passes an explicit threshold this way
    (Algorithm 23, line 10).
    """
    ctx = QueryContext(strict=strict)
    return execute(initiator, handler, r, restriction=restriction, ctx=ctx,
                   initial_state=initial_state)


def execute(
    initiator: PeerLike,
    handler: QueryHandler,
    r: int,
    *,
    restriction: Region,
    ctx: QueryContext,
    initial_state: Any | None = None,
    base_latency: int = 0,
    answers_to: Hashable | None = None,
) -> QueryResult:
    """Low-level entry point: run Algorithm 3 over a caller-owned context.

    Query drivers that prepend a routing/seeding phase (see
    :mod:`repro.queries.drivers`) mark the peers already processed in
    ``ctx``, account the hops already spent in ``base_latency``, and name
    the peer that ultimately receives the answers in ``answers_to`` (the
    real initiator, when the ripple phase starts at a routed-to seed).
    """
    if r < 0:
        raise ValueError(f"ripple parameter must be non-negative, got {r}")
    if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
        sys.setrecursionlimit(_MIN_RECURSION_LIMIT)
    state = handler.initial_state() if initial_state is None else initial_state
    initiator_id = initiator.peer_id if answers_to is None else answers_to
    _, latency = _process(ctx, handler, initiator, state,
                          restriction, r, initiator_id=initiator_id,
                          top_level=True)
    answer = handler.finalize(ctx.collected_answers)
    return QueryResult(answer=answer, stats=ctx.stats(base_latency + latency))


def run_fast(initiator: PeerLike, handler: QueryHandler, *,
             restriction: Region, strict: bool = True) -> QueryResult:
    """Latency-optimal processing (Algorithm 1): ripple with ``r = 0``."""
    return run_ripple(initiator, handler, 0,
                      restriction=restriction, strict=strict)


def run_slow(initiator: PeerLike, handler: QueryHandler, *,
             restriction: Region, strict: bool = True) -> QueryResult:
    """Communication-optimal processing (Algorithm 2): unbounded ``r``."""
    return run_ripple(initiator, handler, SLOW,
                      restriction=restriction, strict=strict)


def _process(
    ctx: QueryContext,
    handler: QueryHandler,
    peer: PeerLike,
    global_state: Any,
    restriction: Region,
    r: int,
    *,
    initiator_id: Hashable,
    top_level: bool = False,
) -> tuple[list[Any], int]:
    """One peer's execution of Algorithm 3.

    Returns the local states this peer contributes upstream — a single
    merged state in sequential mode, or every subtree state in parallel
    mode (the paper has fast-mode peers report directly to their nearest
    ``r = 1`` ancestor) — together with the critical-path latency of the
    subtree rooted here.
    """
    processes = ctx.begin_processing(peer.peer_id)
    if processes:
        local_state = handler.compute_local_state(peer.store, global_state)
    else:
        local_state = handler.neutral_local_state()
    gstate = handler.compute_global_state(global_state, local_state)

    if r > 0:
        # Sequential, prioritized forwarding: fold every response back into
        # the local state before deciding on the next link (Alg. 3, 4-11).
        latency = 0
        links = sorted(peer.links(),
                       key=lambda ln: handler.link_priority(ln.region))
        for link in links:
            sub = link.region.intersect(restriction)
            if sub is None:
                continue
            if not handler.is_link_relevant(sub, gstate):
                continue
            ctx.on_forward()
            child_states, child_latency = _process(
                ctx, handler, link.peer, gstate, sub, r - 1,
                initiator_id=initiator_id)
            ctx.on_response(len(child_states))
            latency += 1 + child_latency
            local_state = handler.update_local_state(
                [local_state, *child_states])
            gstate = handler.compute_global_state(global_state, local_state)
        upstream = [local_state] if processes or not top_level else []
    else:
        # Parallel forwarding: every relevant link at once, latency is the
        # slowest branch (Alg. 3, 13-17 == Alg. 1).  Subtree states flow
        # straight back to the nearest sequential ancestor.
        latency = 0
        upstream = [local_state] if processes else []
        for link in peer.links():
            sub = link.region.intersect(restriction)
            if sub is None:
                continue
            if not handler.is_link_relevant(sub, gstate):
                continue
            ctx.on_forward()
            child_states, child_latency = _process(
                ctx, handler, link.peer, gstate, sub, 0,
                initiator_id=initiator_id)
            latency = max(latency, 1 + child_latency)
            upstream.extend(child_states)

    if processes:
        answer = handler.compute_local_answer(peer.store, local_state)
        size = handler.answer_size(answer)
        if peer.peer_id == initiator_id:
            # The initiator's own qualifying tuples never cross the network.
            ctx.collected_answers.append(answer)
        else:
            ctx.on_answer(answer, size)
    return upstream, latency
