"""The abstract query handler: RIPPLE's pluggable per-query logic.

Algorithms 1–3 of the paper are *templates*: they orchestrate message flow
but delegate every query-specific decision to six abstract functions.  A
:class:`QueryHandler` bundles those functions; Sections 4–6 of the paper
(and :mod:`repro.queries`) provide one handler per query type:

========================  =======================================
paper pseudocode          handler method
========================  =======================================
``computeLocalState``     :meth:`QueryHandler.compute_local_state`
``computeGlobalState``    :meth:`QueryHandler.compute_global_state`
``updateLocalState``      :meth:`QueryHandler.update_local_state`
``computeLocalAnswer``    :meth:`QueryHandler.compute_local_answer`
``isLinkRelevant``        :meth:`QueryHandler.is_link_relevant`
``comp`` (via sortLinks)  :meth:`QueryHandler.link_priority`
========================  =======================================

States are opaque to the framework: it only moves them around.  The
geometric half of ``isLinkRelevant`` — does the link's region overlap the
restriction area? — lives in the framework; the handler only answers the
query-specific half over the (already restricted) region.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Sequence

from ..common.store import LocalStore
from .regions import Region

__all__ = ["QueryHandler"]


class QueryHandler(ABC):
    """Query-specific callbacks consumed by the RIPPLE templates."""

    @abstractmethod
    def initial_state(self) -> Any:
        """The neutral global state the initiator starts from."""

    @abstractmethod
    def compute_local_state(self, store: LocalStore, global_state: Any) -> Any:
        """Derive this peer's local state from its tuples and the received
        global state."""

    @abstractmethod
    def compute_global_state(self, global_state: Any, local_state: Any) -> Any:
        """Fold a local state into the received global state."""

    @abstractmethod
    def update_local_state(self, states: Sequence[Any]) -> Any:
        """Merge several local states (own + those returned by links)."""

    @abstractmethod
    def compute_local_answer(self, store: LocalStore, local_state: Any) -> Any:
        """Extract the locally qualifying tuples for the initiator."""

    @abstractmethod
    def is_link_relevant(self, region: Region, global_state: Any) -> bool:
        """Could ``region`` still contribute to the answer, given the state?"""

    @abstractmethod
    def link_priority(self, region: Region) -> float:
        """Sort key for sequential forwarding; smaller = contacted earlier."""

    def neutral_local_state(self) -> Any:
        """The identity element of :meth:`update_local_state`.

        Reported by peers that receive a query a second time (possible only
        over approximate region covers) so nothing is double-counted.
        """
        return self.update_local_state(())

    @abstractmethod
    def finalize(self, answers: Sequence[Any]) -> Any:
        """Combine the local answers collected at the initiator."""

    def seed_satisfied(self, state: Any) -> bool:
        """Whether a seeding probe (see :mod:`repro.queries.drivers`) has
        gathered enough state to stop; True disables probing."""
        return True

    def probe_score(self, state: Any) -> float:
        """How strong a probe harvest is (monotone; higher is stronger).

        The seeding probe keeps walking while this still improves, so the
        threshold it hands to the fan-out phase has converged.  The
        default (a constant) makes ``seed_satisfied`` the sole stop rule.
        """
        return 0.0

    def answer_size(self, answer: Any) -> int:
        """Number of tuples shipped to the initiator for ``answer``."""
        return len(answer) if answer else 0
