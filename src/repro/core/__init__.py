"""The RIPPLE framework core: templates, regions, handler protocol,
latency analysis."""

from .analysis import (fast_latency, ripple_latency,
                       ripple_latency_closed_form, slow_latency)
from .framework import Link, PeerLike, SLOW, execute, run_fast, run_ripple, run_slow
from .handler import QueryHandler
from .regions import (ArcRegion, FrustumIntersection, FrustumRegion,
                      RectRegion, Region, domain_region)

__all__ = [
    "ArcRegion", "FrustumIntersection", "FrustumRegion", "Link",
    "PeerLike", "QueryHandler", "RectRegion", "Region", "SLOW",
    "domain_region", "execute", "fast_latency", "ripple_latency",
    "ripple_latency_closed_form", "run_fast", "run_ripple", "run_slow",
    "slow_latency",
]
