"""Figures 7-8: skyline computation (Section 7.2.2).

Four methods compete:

* ``ripple-fast`` / ``ripple-slow`` — RIPPLE over MIDAS with the boundary
  link-policy optimization of Section 5.2 (the two extreme r values; any
  other r lands between them, as Section 7.2.1 established).
* ``dsl`` — DSL over CAN [20].
* ``ssp`` — SSP over BATON + Z-curve [18].

Every query's answer is verified against the centralized skyline.
"""

from __future__ import annotations

import numpy as np

from ..baselines.dsl import dsl_skyline
from ..baselines.ssp import ssp_skyline
from ..queries.skyline import distributed_skyline, skyline_reference
from .builders import build_baton, build_can, build_midas, nba_min, synth
from .config import ExperimentConfig, default_config
from .figures import merge_seed_rows
from .runner import Row, average_queries, print_rows

__all__ = ["fig7_skyline_scale", "fig8_skyline_dims"]


def _methods(data, size, seed):
    """Build all four competitors over the same data at the same size."""
    midas = build_midas(data, size, seed, link_policy="boundary")
    can = build_can(data, size, seed)
    baton = build_baton(data, size, seed)
    dims = data.shape[1]
    return {
        "ripple-fast": lambda rng: distributed_skyline(
            midas.random_peer(rng), dims, restriction=midas.domain(), r=0),
        "ripple-slow": lambda rng: distributed_skyline(
            midas.random_peer(rng), dims, restriction=midas.domain(),
            r=10 ** 9),
        "dsl": lambda rng: dsl_skyline(can, can.random_peer(rng)),
        "ssp": lambda rng: ssp_skyline(baton, baton.random_peer(rng)),
    }


def _measure_skyline(figure, x_name, x, data, size, seed, *, queries, rng):
    reference = skyline_reference(data)

    def check(result):
        assert result.answer == reference, f"{figure}: wrong skyline"

    return [average_queries(figure, x_name, x, name, run_one,
                            queries=queries, rng=rng, check=check)
            for name, run_one in _methods(data, size, seed).items()]


def fig7_skyline_scale(config: ExperimentConfig | None = None) -> list[Row]:
    """Figure 7: skyline computation in terms of overlay size."""
    config = config or default_config()
    rows: list[Row] = []
    for seed in config.network_seeds:
        data = nba_min(config, seed)
        rng = np.random.default_rng(seed)
        for size in sorted(config.sizes):
            rows.extend(_measure_skyline(
                "fig7", "network size", size, data, size, seed,
                queries=config.queries, rng=rng))
    return merge_seed_rows(rows)


def fig8_skyline_dims(config: ExperimentConfig | None = None) -> list[Row]:
    """Figure 8: skyline computation in terms of dimensionality."""
    config = config or default_config()
    rows: list[Row] = []
    for seed in config.network_seeds:
        rng = np.random.default_rng(seed)
        for dims in config.skyline_dims:
            data = synth(config, dims, seed)
            rows.extend(_measure_skyline(
                "fig8", "dimensionality", dims, data, config.default_size,
                seed, queries=config.queries, rng=rng))
    return merge_seed_rows(rows)


def main() -> None:  # pragma: no cover - manual entry point
    for fig in (fig7_skyline_scale, fig8_skyline_dims):
        print_rows(fig())


if __name__ == "__main__":  # pragma: no cover
    main()
