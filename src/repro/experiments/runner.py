"""Measurement and reporting primitives for the experiment suite.

Every figure module produces ``Row`` records — one per (x value, method) —
holding the averaged metrics the paper plots: latency (hops) and
congestion (peers processing a query), plus secondary traffic counters.
``print_rows`` renders them as the aligned text table the benchmarks and
the EXPERIMENTS.md record are generated from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from ..net.context import QueryResult

__all__ = ["Row", "average_queries", "print_rows", "rows_to_series"]


@dataclass(frozen=True)
class Row:
    """One averaged measurement point of a figure."""

    figure: str
    x_name: str
    x: float
    method: str
    latency: float
    congestion: float
    messages: float
    tuples_shipped: float
    queries: int

    def as_dict(self) -> dict:
        return {
            "figure": self.figure, "x_name": self.x_name, "x": self.x,
            "method": self.method, "latency": self.latency,
            "congestion": self.congestion, "messages": self.messages,
            "tuples_shipped": self.tuples_shipped, "queries": self.queries,
        }


def average_queries(
    figure: str,
    x_name: str,
    x: float,
    method: str,
    run_one: Callable[[np.random.Generator], QueryResult],
    *,
    queries: int,
    rng: np.random.Generator,
    check: Callable[[QueryResult], None] | None = None,
) -> Row:
    """Run ``run_one`` ``queries`` times and average the paper's metrics."""
    latencies, congestions, messages, shipped = [], [], [], []
    for _ in range(queries):
        result = run_one(rng)
        if check is not None:
            check(result)
        stats = result.stats
        latencies.append(stats.latency)
        congestions.append(stats.processed)
        messages.append(stats.total_messages)
        shipped.append(stats.tuples_shipped)
    return Row(figure=figure, x_name=x_name, x=x, method=method,
               latency=float(np.mean(latencies)),
               congestion=float(np.mean(congestions)),
               messages=float(np.mean(messages)),
               tuples_shipped=float(np.mean(shipped)),
               queries=queries)


def print_rows(rows: Sequence[Row], *, metrics: Iterable[str] = (
        "latency", "congestion")) -> str:
    """Render rows as one aligned table per metric (like the paper's
    figure panels: x on rows, one column per method)."""
    lines = []
    if not rows:
        return "(no rows)"
    figure = rows[0].figure
    x_name = rows[0].x_name
    methods = list(dict.fromkeys(row.method for row in rows))
    xs = sorted(dict.fromkeys(row.x for row in rows))
    table = {(row.x, row.method): row for row in rows}
    for metric in metrics:
        lines.append(f"[{figure}] {metric}")
        header = [x_name.rjust(12)] + [m.rjust(18) for m in methods]
        lines.append(" ".join(header))
        for x in xs:
            cells = [f"{x:12g}"]
            for method in methods:
                row = table.get((x, method))
                value = getattr(row, metric) if row else float("nan")
                cells.append(f"{value:18.1f}")
            lines.append(" ".join(cells))
        lines.append("")
    text = "\n".join(lines)
    print(text)
    return text


def rows_to_series(rows: Sequence[Row], metric: str
                   ) -> dict[str, list[tuple[float, float]]]:
    """Group rows into per-method (x, value) series for assertions."""
    series: dict[str, list[tuple[float, float]]] = {}
    for row in sorted(rows, key=lambda r: r.x):
        series.setdefault(row.method, []).append(
            (row.x, getattr(row, metric)))
    return series


def rows_to_csv(rows: Sequence[Row], path) -> None:
    """Persist measurement rows as CSV (one line per x/method point)."""
    import csv

    fields = ["figure", "x_name", "x", "method", "latency", "congestion",
              "messages", "tuples_shipped", "queries"]
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=fields)
        writer.writeheader()
        for row in rows:
            writer.writerow(row.as_dict())


def ascii_chart(rows: Sequence[Row], metric: str, *, width: int = 60,
                height: int = 14) -> str:
    """A terminal line chart of one metric, one glyph per method.

    A rough visual of what the paper's figure panel looks like; values
    are scaled linearly, x positions follow the sorted x values.
    """
    series = rows_to_series(rows, metric)
    if not series:
        return "(no data)"
    xs = sorted({x for points in series.values() for x, _ in points})
    values = [v for points in series.values() for _, v in points]
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    glyphs = "*o+x#@%&"
    legend = []
    for glyph, (method, points) in zip(glyphs, sorted(series.items())):
        legend.append(f"{glyph} = {method}")
        for x, value in points:
            col = (0 if len(xs) == 1
                   else round(xs.index(x) * (width - 1) / (len(xs) - 1)))
            row_idx = round((hi - value) / span * (height - 1))
            grid[row_idx][col] = glyph
    lines = [f"{metric}  [{lo:.1f} .. {hi:.1f}]"]
    lines += ["|" + "".join(line) for line in grid]
    lines.append("+" + "-" * width)
    lines.append(f" x: {xs[0]:g} .. {xs[-1]:g}   " + "   ".join(legend))
    return "\n".join(lines)
