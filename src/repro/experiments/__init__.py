"""The experiment suite: regenerate every table and figure of the paper.

Use the CLI (``python -m repro.experiments <figure> --scale <scale>``) or
call the figure functions directly; each returns a list of
:class:`~repro.experiments.runner.Row` records holding the paper's
metrics per (x value, method).
"""

from .analysis_figures import (ablation_link_policy, decreasing_stage,
                               lemmas_table)
from .config import (ExperimentConfig, default_config, paper_config,
                     smoke_config)
from .diversify_figures import (fig10_div_dims, fig11_div_k,
                                fig12_div_lambda, fig9_div_scale)
from .runner import Row, print_rows, rows_to_series
from .skyline_figures import fig7_skyline_scale, fig8_skyline_dims
from .topk_figures import fig4_topk_scale, fig5_topk_dims, fig6_topk_k

__all__ = [
    "ExperimentConfig",
    "Row",
    "ablation_link_policy",
    "decreasing_stage",
    "default_config",
    "fig4_topk_scale",
    "fig5_topk_dims",
    "fig6_topk_k",
    "fig7_skyline_scale",
    "fig8_skyline_dims",
    "fig9_div_scale",
    "fig10_div_dims",
    "fig11_div_k",
    "fig12_div_lambda",
    "lemmas_table",
    "paper_config",
    "print_rows",
    "rows_to_series",
    "smoke_config",
]
