"""Shared helpers for the per-figure experiment modules."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .runner import Row

__all__ = ["ripple_levels", "merge_seed_rows", "RIPPLE_LEVEL_LABELS"]

RIPPLE_LEVEL_LABELS = ("r=0", "r=D/3", "r=2D/3", "r=D")


def ripple_levels(delta: int) -> list[tuple[str, int]]:
    """The paper's four ripple parameter settings for a given Delta."""
    return [("r=0", 0), ("r=D/3", max(1, delta // 3)),
            ("r=2D/3", max(2, (2 * delta) // 3)), ("r=D", delta)]


def merge_seed_rows(rows: Sequence[Row]) -> list[Row]:
    """Average rows measured on different network seeds pointwise."""
    grouped: dict[tuple, list[Row]] = {}
    for row in rows:
        grouped.setdefault((row.figure, row.x_name, row.x, row.method),
                           []).append(row)
    merged = []
    for (figure, x_name, x, method), group in grouped.items():
        merged.append(Row(
            figure=figure, x_name=x_name, x=x, method=method,
            latency=float(np.mean([r.latency for r in group])),
            congestion=float(np.mean([r.congestion for r in group])),
            messages=float(np.mean([r.messages for r in group])),
            tuples_shipped=float(np.mean([r.tuples_shipped for r in group])),
            queries=sum(r.queries for r in group)))
    merged.sort(key=lambda r: (r.x, RIPPLE_LEVEL_LABELS.index(r.method)
                               if r.method in RIPPLE_LEVEL_LABELS
                               else r.method))
    return merged
