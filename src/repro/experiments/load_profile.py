"""Serving profile: the concurrent engine's behavior under rising load.

Not a figure from the paper — RIPPLE's experiments measure one query at
a time — but the natural companion once queries multiplex over shared
peers: sweep open-loop arrival rates from well below to past the
engine's saturation point for each admission policy, and tabulate the
serving metrics (exact p50/p99 turnaround, shed rate, completed count).
``python -m repro.experiments load`` prints the table;
``--trace-out load.json`` additionally records one overloaded workload
as a Perfetto trace in which per-query root spans interleave (see
docs/LOAD.md for a worked reading of that trace).
"""

from __future__ import annotations

import numpy as np

from ..common.scoring import LinearScore
from ..net.scheduler import (AdmissionPolicy, PriorityPolicy, QueryEngine,
                             WeightedFairPolicy)
from ..net.workload import WorkloadSpec, run_workload
from ..obs.trace import TraceSink
from ..queries.topk import TopKHandler
from .builders import build_midas, synth
from .config import ExperimentConfig

__all__ = ["MULTIPLIERS", "POLICIES", "load_profile", "print_load_rows",
           "trace_overloaded_workload"]

POLICIES = ("fifo", "priority", "wfair")
MULTIPLIERS = (0.25, 0.5, 1.0, 2.0)


def _policy(name: str) -> AdmissionPolicy | None:
    if name == "priority":
        return PriorityPolicy()
    if name == "wfair":
        return WeightedFairPolicy({"gold": 3, "bronze": 1})
    return None  # engine default: FIFO


def _spec(policy: str, *, queries: int, rate: float,
          seed: int) -> WorkloadSpec:
    extra: dict = {}
    if policy == "priority":
        extra["priorities"] = (0, 1, 2)
    elif policy == "wfair":
        extra["classes"] = (("gold", 3), ("bronze", 1))
    return WorkloadSpec(queries=queries, rate=rate, seed=seed,
                        strict=False, rs=(0, 1), **extra)


def _saturation_rate(overlay, *, capacity: int, service_time: int,
                     seed: int) -> float:
    """Arrival rate at which ``capacity`` queries stay in flight back to
    back: capacity over the solo (uncontended) query turnaround."""
    engine = QueryEngine(capacity=1, service_time=service_time)
    dims = overlay.domain().cover()[0].dims
    handler = TopKHandler(LinearScore([1.0] * dims), 8)
    initiator = overlay.random_peer(np.random.default_rng(seed))
    job_id = engine.submit(initiator, handler, 1,
                           restriction=overlay.domain(), strict=False)
    engine.run()
    outcome = engine.result_of(job_id)
    assert outcome is not None
    return capacity / max(1, outcome.turnaround)


def load_profile(config: ExperimentConfig, *, capacity: int = 4,
                 queue_limit: int = 8,
                 service_time: int = 1) -> list[dict[str, object]]:
    """Policy x load-multiplier serving rows on a MIDAS network."""
    seed = config.network_seeds[0]
    data = synth(config, 2, seed)
    overlay = build_midas(data, config.default_size, seed)
    base_rate = _saturation_rate(overlay, capacity=capacity,
                                 service_time=service_time, seed=seed)
    queries = max(24, 2 * config.queries)
    rows: list[dict[str, object]] = []
    for policy in POLICIES:
        for mult in MULTIPLIERS:
            engine = QueryEngine(capacity=capacity, queue_limit=queue_limit,
                                 policy=_policy(policy),
                                 service_time=service_time)
            report = run_workload(
                overlay, _spec(policy, queries=queries,
                               rate=mult * base_rate, seed=seed),
                engine=engine)
            rows.append({"policy": policy, "load_x": mult,
                         "p50": report.p50, "p99": report.p99,
                         "shed_rate": report.shed_rate,
                         "completed": report.completed,
                         "submitted": report.submitted})
    return rows


def print_load_rows(rows: list[dict[str, object]]) -> None:
    header = f"{'policy':10s} {'load':>6s} {'p50':>8s} {'p99':>8s} " \
             f"{'shed':>6s} {'done':>5s}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['policy']:10s} {row['load_x']:>5.2f}x "
              f"{row['p50']:>8.1f} {row['p99']:>8.1f} "
              f"{row['shed_rate']:>6.2f} "
              f"{row['completed']:>3d}/{row['submitted']}")


def trace_overloaded_workload(config: ExperimentConfig,
                              trace: TraceSink) -> None:
    """One 2x-saturation FIFO workload with ``trace`` attached — the
    representative recording behind ``load --trace-out``."""
    seed = config.network_seeds[0]
    data = synth(config, 2, seed)
    overlay = build_midas(data, config.default_size, seed)
    base_rate = _saturation_rate(overlay, capacity=4, service_time=1,
                                 seed=seed)
    engine = QueryEngine(capacity=4, queue_limit=8, service_time=1,
                         sink=trace)
    run_workload(overlay,
                 _spec("fifo", queries=12, rate=2 * base_rate, seed=seed),
                 engine=engine)
