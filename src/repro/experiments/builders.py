"""Dataset and overlay builders shared by every experiment.

Networks follow the paper's dynamic topology: an overlay is built by
successive joins (the *increasing stage*); sweeps over network size reuse
one overlay per seed and keep growing it between measurement points, so a
measurement at 2^11 peers is the same network that was measured at 2^10
after more churn.  ``shrink_between`` reproduces the decreasing stage.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..data.mirflickr import mirflickr_dataset
from ..data.nba import nba_dataset, to_minimization
from ..data.synth import synth_clustered
from ..overlays.baton import BatonOverlay
from ..overlays.can import CanOverlay
from ..overlays.midas import LinkPolicy, MidasOverlay
from ..overlays.zcurve import ZCurve
from .config import ExperimentConfig

__all__ = [
    "nba_raw",
    "nba_min",
    "synth",
    "mirflickr",
    "build_midas",
    "build_can",
    "build_baton",
    "grow_stages",
]


def nba_raw(config: ExperimentConfig, seed: int = 0) -> np.ndarray:
    """NBA-like data, higher = better (top-k orientation)."""
    return nba_dataset(np.random.default_rng(seed + 101), config.nba_tuples)


def nba_min(config: ExperimentConfig, seed: int = 0) -> np.ndarray:
    """NBA-like data flipped to lower = better (skyline orientation)."""
    return to_minimization(nba_raw(config, seed))


def synth(config: ExperimentConfig, dims: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed + 202)
    return synth_clustered(config.synth_tuples, dims,
                           clusters=config.synth_clusters, rng=rng)


def mirflickr(config: ExperimentConfig, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed + 303)
    return mirflickr_dataset(rng, config.mirflickr_tuples)


def build_midas(data: np.ndarray, size: int, seed: int, *,
                link_policy: LinkPolicy = "random") -> MidasOverlay:
    """The experiment-standard MIDAS network: data-adaptive joins over
    midpoint splits (see DESIGN.md), loaded before growing."""
    overlay = MidasOverlay(data.shape[1], size=1, seed=seed,
                           join_policy="data", split_rule="midpoint",
                           link_policy=link_policy)
    overlay.load(data)
    overlay.grow_to(size)
    return overlay


def build_can(data: np.ndarray, size: int, seed: int) -> CanOverlay:
    overlay = CanOverlay(data.shape[1], size=1, seed=seed,
                         join_policy="data")
    overlay.load(data)
    overlay.grow_to(size)
    return overlay


def build_baton(data: np.ndarray, size: int, seed: int, *,
                bits_per_dim: int = 8) -> BatonOverlay:
    bits = min(bits_per_dim, 62 // data.shape[1])
    return BatonOverlay(size, data, zcurve=ZCurve(data.shape[1], bits),
                        seed=seed)


def grow_stages(overlay, sizes: tuple[int, ...]) -> Iterator[int]:
    """Yield after growing the overlay to each size (increasing stage)."""
    for size in sorted(sizes):
        overlay.grow_to(size)
        yield size
