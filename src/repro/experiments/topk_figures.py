"""Figures 4-6: top-k query performance (Section 7.2.1).

* Figure 4 — latency and congestion vs overlay size (NBA-like data).
* Figure 5 — vs dimensionality (SYNTH).
* Figure 6 — vs result size k (NBA-like data).

Each figure compares the four ripple parameter settings
``r in {0, D/3, 2D/3, D}`` — there is no competitor method for
distributed top-k over structured overlays (Section 2.1).
Every query's answer is verified against the centralized oracle.
"""

from __future__ import annotations

import numpy as np

from ..common.scoring import LinearScore
from ..queries.topk import distributed_topk, topk_reference
from .builders import build_midas, grow_stages, nba_raw, synth
from .config import ExperimentConfig, default_config
from .figures import merge_seed_rows, ripple_levels
from .runner import Row, average_queries, print_rows

__all__ = ["fig4_topk_scale", "fig5_topk_dims", "fig6_topk_k"]


def _measure_topk(figure, x_name, x, overlay, data, k, *, queries, rng):
    fn = LinearScore([1.0] * data.shape[1])
    reference = [s for s, _ in topk_reference(data, fn, k)]

    def check(result):
        got = [s for s, _ in result.answer]
        assert got == reference, f"{figure}: wrong top-{k} answer"

    rows = []
    for label, r in ripple_levels(overlay.max_links()):
        rows.append(average_queries(
            figure, x_name, x, label,
            lambda q_rng, r=r: distributed_topk(
                overlay.random_peer(q_rng), fn, k,
                restriction=overlay.domain(), r=r),
            queries=queries, rng=rng, check=check))
    return rows


def fig4_topk_scale(config: ExperimentConfig | None = None) -> list[Row]:
    """Figure 4: top-k performance in terms of overlay size."""
    config = config or default_config()
    rows: list[Row] = []
    for seed in config.network_seeds:
        data = nba_raw(config, seed)
        rng = np.random.default_rng(seed)
        overlay = build_midas(data, min(config.sizes), seed)
        for size in grow_stages(overlay, config.sizes):
            rows.extend(_measure_topk(
                "fig4", "network size", size, overlay, data,
                config.default_k, queries=config.queries, rng=rng))
    return merge_seed_rows(rows)


def fig5_topk_dims(config: ExperimentConfig | None = None) -> list[Row]:
    """Figure 5: top-k performance in terms of dimensionality."""
    config = config or default_config()
    rows: list[Row] = []
    for seed in config.network_seeds:
        rng = np.random.default_rng(seed)
        for dims in config.dims:
            data = synth(config, dims, seed)
            overlay = build_midas(data, config.default_size, seed)
            rows.extend(_measure_topk(
                "fig5", "dimensionality", dims, overlay, data,
                config.default_k, queries=config.queries, rng=rng))
    return merge_seed_rows(rows)


def fig6_topk_k(config: ExperimentConfig | None = None) -> list[Row]:
    """Figure 6: top-k performance in terms of result size."""
    config = config or default_config()
    rows: list[Row] = []
    for seed in config.network_seeds:
        data = nba_raw(config, seed)
        rng = np.random.default_rng(seed)
        overlay = build_midas(data, config.default_size, seed)
        for k in config.ks:
            rows.extend(_measure_topk(
                "fig6", "result size", k, overlay, data, k,
                queries=config.queries, rng=rng))
    return merge_seed_rows(rows)


def main() -> None:  # pragma: no cover - manual entry point
    for fig in (fig4_topk_scale, fig5_topk_dims, fig6_topk_k):
        print_rows(fig())


if __name__ == "__main__":  # pragma: no cover
    main()
