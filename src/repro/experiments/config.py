"""Experiment configuration (the paper's Table 1, plus scale controls).

The paper's grid:

=================  ======================================  =========
parameter          range                                   default
=================  ======================================  =========
overlay size       2^10 ... 2^17                           2^14
dimensions         2 ... 10                                5 (SYNTH), 6 (NBA)
result size k      10 ... 100                              10
rel/div lambda     0, 0.2, 0.3, 0.5, 0.7, 0.8, 1           0.5
=================  ======================================  =========

Simulating 2^17 peers and 65,536 queries x 16 networks in pure Python is
possible but pointless for checking *shapes*, so a config also carries
scale knobs (dataset size, number of queries, number of network seeds)
whose defaults are laptop-sized; `paper()` returns the full-scale grid for
completeness.  EXPERIMENTS.md records which scale each reported run used.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ExperimentConfig", "default_config", "paper_config",
           "smoke_config"]

PAPER_SIZES = tuple(2 ** e for e in range(10, 18))
PAPER_DIMS = tuple(range(2, 11))
PAPER_KS = tuple(range(10, 101, 10))
PAPER_LAMBDAS = (0.0, 0.2, 0.3, 0.5, 0.7, 0.8, 1.0)


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything a figure module needs to produce its series."""

    sizes: tuple[int, ...] = (2 ** 8, 2 ** 9, 2 ** 10, 2 ** 11)
    dims: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8)
    #: dimensionality sweeps for skyline/diversification: high-dimensional
    #: near-uniform data has skylines of 10^4+ tuples, so the default
    #: scale stops at 6 dimensions (the paper's 131k-peer runs go to 10)
    skyline_dims: tuple[int, ...] = (2, 3, 4, 5, 6)
    div_dims: tuple[int, ...] = (2, 3, 4, 5)
    ks: tuple[int, ...] = (10, 20, 40, 60, 80, 100)
    lambdas: tuple[float, ...] = PAPER_LAMBDAS
    default_size: int = 2 ** 10
    default_dims_synth: int = 5
    default_k: int = 10
    default_lambda: float = 0.5
    #: tuples in the NBA-like collection (paper: 22,000)
    nba_tuples: int = 22_000
    #: tuples drawn from the SYNTH / MIRFLICKR-like generators
    #: (paper: 1,000,000)
    synth_tuples: int = 40_000
    mirflickr_tuples: int = 20_000
    synth_clusters: int = 2_000
    #: queries averaged per data point and network seeds per configuration
    #: (paper: 65,536 queries over 16 networks)
    queries: int = 16
    network_seeds: tuple[int, ...] = (7, 19)
    #: diversification is a multi-query operation (hundreds of distributed
    #: sub-queries per greedy run), so it gets its own, tighter knobs
    div_sizes: tuple[int, ...] = (2 ** 7, 2 ** 8, 2 ** 9, 2 ** 10)
    div_default_size: int = 2 ** 8
    div_queries: int = 1
    div_k: int = 10
    div_ks: tuple[int, ...] = (10, 20, 40)
    div_lambdas: tuple[float, ...] = (0.0, 0.2, 0.5, 0.8, 1.0)
    div_max_iters: int = 5
    #: complete-tree depths for the arena scale target (``python -m
    #: repro.experiments scale``): network sizes are ``2**depth`` peers.
    #: Default re-validates Lemmas 1-3 at ~10k and ~131k peers; paper
    #: scale adds the 1M-peer (2**20) row.
    scale_depths: tuple[int, ...] = (13, 17)
    seed: int = 1

    def scaled(self, **overrides) -> "ExperimentConfig":
        return replace(self, **overrides)


def default_config() -> ExperimentConfig:
    """Laptop-scale defaults used by EXPERIMENTS.md."""
    return ExperimentConfig()


def smoke_config() -> ExperimentConfig:
    """Tiny configuration for tests and pytest-benchmark runs."""
    return ExperimentConfig(
        sizes=(2 ** 6, 2 ** 7),
        dims=(2, 4),
        skyline_dims=(2, 4),
        div_dims=(2, 3),
        ks=(5, 10),
        div_ks=(4, 8),
        lambdas=(0.2, 0.5, 0.8),
        default_size=2 ** 7,
        nba_tuples=4_000,
        synth_tuples=5_000,
        mirflickr_tuples=3_000,
        synth_clusters=200,
        queries=3,
        network_seeds=(7,),
        div_sizes=(2 ** 5, 2 ** 6),
        div_default_size=2 ** 6,
        div_queries=1,
        div_k=5,
        div_max_iters=3,
        scale_depths=(6, 9),
    )


def paper_config() -> ExperimentConfig:
    """The full Table 1 grid (hours of simulation; provided for
    completeness)."""
    return ExperimentConfig(
        sizes=PAPER_SIZES,
        dims=PAPER_DIMS,
        skyline_dims=PAPER_DIMS,
        div_dims=PAPER_DIMS,
        ks=PAPER_KS,
        div_ks=PAPER_KS,
        lambdas=PAPER_LAMBDAS,
        default_size=2 ** 14,
        nba_tuples=22_000,
        synth_tuples=1_000_000,
        mirflickr_tuples=1_000_000,
        synth_clusters=50_000,
        queries=256,
        network_seeds=tuple(range(16)),
        div_sizes=PAPER_SIZES,
        div_default_size=2 ** 14,
        div_queries=16,
        div_k=10,
        div_lambdas=PAPER_LAMBDAS,
        div_max_iters=10,
        scale_depths=(13, 17, 20),
    )
