"""Lemma validation and the Section 5.2 ablation.

* ``lemmas_table`` — worst-case latency of fast/slow/ripple measured on
  complete MIDAS overlays with pruning disabled, against the formulas of
  Section 3.2 (Lemmas 1-3).  Measured and analytical values must be equal.
* ``ablation_link_policy`` — skyline cost with the plain random MIDAS
  link policy vs the boundary-pattern policy of Section 5.2.
"""

from __future__ import annotations

import numpy as np

from ..common.scoring import LinearScore
from ..core.analysis import fast_latency, ripple_latency, slow_latency
from ..core.framework import SLOW, run_ripple
from ..overlays.midas import MidasOverlay
from ..queries.skyline import distributed_skyline, skyline_reference
from ..queries.topk import TopKHandler
from .builders import build_midas, nba_min
from .config import ExperimentConfig, default_config
from .figures import merge_seed_rows
from .runner import Row, average_queries, print_rows

__all__ = ["lemmas_table", "ablation_link_policy"]


def lemmas_table(depths: tuple[int, ...] = (2, 3, 4, 5),
                 ripple_rs: tuple[int, ...] = (1, 2)) -> list[Row]:
    """Measured vs analytical worst-case latency on complete overlays."""
    rows = []
    for depth in depths:
        overlay = MidasOverlay.complete(2, depth, seed=0)
        handler = TopKHandler(LinearScore([1.0, 1.0]), 10 ** 9)

        def measure(r: int) -> int:
            result = run_ripple(overlay.peers()[0], handler, r,
                                restriction=overlay.domain())
            assert result.stats.processed == 2 ** depth
            return result.stats.latency

        settings = [("fast (measured)", measure(0)),
                    ("fast (Lemma 1)", fast_latency(depth)),
                    ("slow (measured)", measure(SLOW)),
                    ("slow (Lemma 2)", slow_latency(depth))]
        for r in ripple_rs:
            settings.append((f"ripple r={r} (measured)", measure(r)))
            settings.append((f"ripple r={r} (Lemma 3)",
                             ripple_latency(depth, r)))
        for name, value in settings:
            rows.append(Row(figure="lemmas", x_name="tree depth", x=depth,
                            method=name, latency=float(value),
                            congestion=float(2 ** depth), messages=0.0,
                            tuples_shipped=0.0, queries=1))
    return rows


def ablation_link_policy(config: ExperimentConfig | None = None) -> list[Row]:
    """Section 5.2 ablation: random vs boundary-pattern link targets."""
    config = config or default_config()
    rows: list[Row] = []
    for seed in config.network_seeds:
        data = nba_min(config, seed)
        reference = skyline_reference(data)
        rng = np.random.default_rng(seed)

        def check(result):
            assert result.answer == reference

        for policy in ("random", "boundary"):
            overlay = build_midas(data, config.default_size, seed,
                                  link_policy=policy)
            for label, r in (("fast", 0), ("slow", 10 ** 9)):
                rows.append(average_queries(
                    "ablation-5.2", "policy+mode", 0.0,
                    f"{policy}/{label}",
                    lambda q_rng, r=r, ov=overlay: distributed_skyline(
                        ov.random_peer(q_rng), data.shape[1],
                        restriction=ov.domain(), r=r),
                    queries=config.queries, rng=rng, check=check))
    return merge_seed_rows(rows)


def decreasing_stage(config: ExperimentConfig | None = None) -> list[Row]:
    """The decreasing stage of the dynamic topology (Section 7.1).

    The paper grows networks from 1,024 to 131,072 peers and then lets
    peers leave until 1,024 remain, reporting that the decreasing-stage
    results are analogous to the increasing stage.  This experiment
    measures top-k cost while the network *shrinks* through the same
    sizes, exercising the departure protocol under load.
    """
    from ..common.scoring import LinearScore
    from ..queries.topk import distributed_topk, topk_reference
    from .builders import build_midas, nba_raw
    from .figures import ripple_levels

    config = config or default_config()
    rows: list[Row] = []
    for seed in config.network_seeds:
        data = nba_raw(config, seed)
        rng = np.random.default_rng(seed)
        fn = LinearScore([1.0] * data.shape[1])
        reference = [s for s, _ in topk_reference(data, fn,
                                                  config.default_k)]

        def check(result):
            assert [s for s, _ in result.answer] == reference

        overlay = build_midas(data, max(config.sizes), seed)
        for size in sorted(config.sizes, reverse=True):
            overlay.shrink_to(size)
            for label, r in ripple_levels(overlay.max_links()):
                rows.append(average_queries(
                    "decreasing-stage", "network size", size, label,
                    lambda q_rng, r=r: distributed_topk(
                        overlay.random_peer(q_rng), fn, config.default_k,
                        restriction=overlay.domain(), r=r),
                    queries=config.queries, rng=rng, check=check))
    return merge_seed_rows(rows)


def main() -> None:  # pragma: no cover - manual entry point
    print_rows(lemmas_table(), metrics=("latency",))
    print_rows(ablation_link_policy(),
               metrics=("latency", "congestion", "tuples_shipped"))
    print_rows(decreasing_stage())


if __name__ == "__main__":  # pragma: no cover
    main()
