"""Figures 9-12: k-diversification performance (Section 7.2.3).

Three methods compete:

* ``ripple-fast`` / ``ripple-slow`` — the RIPPLE-based greedy algorithm
  (Section 6.3) over MIDAS, at the two extreme r values.
* ``baseline`` — the incremental-diversification adaptation over CAN
  (Minack et al. [12]).

All three run the *same* greedy driver, so they produce the same result
set at every step (the paper's fairness device) — asserted per query.
"""

from __future__ import annotations

import numpy as np

from ..baselines.div_baseline import FloodingDiversifier
from ..queries.diversify import (DiversificationObjective, RippleDiversifier,
                                 greedy_diversify)
from .builders import build_can, build_midas, mirflickr, synth
from .config import ExperimentConfig, default_config
from .figures import merge_seed_rows
from .runner import Row, print_rows

__all__ = ["fig9_div_scale", "fig10_div_dims", "fig11_div_k",
           "fig12_div_lambda"]


def _measure_div(figure, x_name, x, data, size, seed, *, k, lam, config,
                 rng) -> list[Row]:
    midas = build_midas(data, size, seed)
    can = build_can(data, size, seed)
    sums = {name: {"latency": 0.0, "congestion": 0.0, "messages": 0.0,
                   "tuples": 0.0} for name in
            ("ripple-fast", "ripple-slow", "baseline")}
    queries = config.div_queries
    for _ in range(queries):
        query_point = data[int(rng.integers(len(data)))]
        objective = DiversificationObjective(query_point, lam, p=1)
        engines = {
            "ripple-fast": RippleDiversifier(midas, midas.random_peer(rng),
                                             r=0),
            "ripple-slow": RippleDiversifier(midas, midas.random_peer(rng),
                                             r=10 ** 9),
            "baseline": FloodingDiversifier(can, can.random_peer(rng)),
        }
        answers = {}
        for name, engine in engines.items():
            result = greedy_diversify(engine, objective, k,
                                      max_iters=config.div_max_iters)
            answers[name] = sorted(result.answer[0])
            sums[name]["latency"] += result.stats.latency
            sums[name]["congestion"] += result.stats.processed
            sums[name]["messages"] += result.stats.total_messages
            sums[name]["tuples"] += result.stats.tuples_shipped
        # the paper forces all heuristics to the same per-step result
        assert answers["ripple-fast"] == answers["baseline"], \
            f"{figure}: engines diverged"
        assert answers["ripple-slow"] == answers["baseline"], \
            f"{figure}: engines diverged"
    return [Row(figure=figure, x_name=x_name, x=x, method=name,
                latency=s["latency"] / queries,
                congestion=s["congestion"] / queries,
                messages=s["messages"] / queries,
                tuples_shipped=s["tuples"] / queries,
                queries=queries)
            for name, s in sums.items()]


def fig9_div_scale(config: ExperimentConfig | None = None) -> list[Row]:
    """Figure 9: diversification in terms of overlay size (MIRFLICKR)."""
    config = config or default_config()
    rows: list[Row] = []
    for seed in config.network_seeds:
        data = mirflickr(config, seed)
        rng = np.random.default_rng(seed)
        for size in sorted(config.div_sizes):
            rows.extend(_measure_div(
                "fig9", "network size", size, data, size, seed,
                k=config.div_k, lam=config.default_lambda, config=config,
                rng=rng))
    return merge_seed_rows(rows)


def fig10_div_dims(config: ExperimentConfig | None = None) -> list[Row]:
    """Figure 10: diversification in terms of dimensionality (SYNTH)."""
    config = config or default_config()
    size = config.div_default_size
    rows: list[Row] = []
    for seed in config.network_seeds:
        rng = np.random.default_rng(seed)
        for dims in config.div_dims:
            data = synth(config, dims, seed)
            rows.extend(_measure_div(
                "fig10", "dimensionality", dims, data, size, seed,
                k=config.div_k, lam=config.default_lambda, config=config,
                rng=rng))
    return merge_seed_rows(rows)


def fig11_div_k(config: ExperimentConfig | None = None) -> list[Row]:
    """Figure 11: diversification in terms of result size (MIRFLICKR)."""
    config = config or default_config()
    size = config.div_default_size
    rows: list[Row] = []
    for seed in config.network_seeds:
        data = mirflickr(config, seed)
        rng = np.random.default_rng(seed)
        for k in config.div_ks:
            rows.extend(_measure_div(
                "fig11", "result size", k, data, size, seed, k=k,
                lam=config.default_lambda, config=config, rng=rng))
    return merge_seed_rows(rows)


def fig12_div_lambda(config: ExperimentConfig | None = None) -> list[Row]:
    """Figure 12: diversification vs the relevance/diversity trade-off."""
    config = config or default_config()
    size = config.div_default_size
    rows: list[Row] = []
    for seed in config.network_seeds:
        data = mirflickr(config, seed)
        rng = np.random.default_rng(seed)
        for lam in config.div_lambdas:
            rows.extend(_measure_div(
                "fig12", "rel/div tradeoff", lam, data, size, seed,
                k=config.div_k, lam=lam, config=config, rng=rng))
    return merge_seed_rows(rows)


def main() -> None:  # pragma: no cover - manual entry point
    for fig in (fig9_div_scale, fig10_div_dims, fig11_div_k,
                fig12_div_lambda):
        print_rows(fig())


if __name__ == "__main__":  # pragma: no cover
    main()
