"""The ``scale`` experiment: Lemma 1-3 latency curves at 10k-1M peers.

The paper's latency analysis (Section 3.2) is exact for complete MIDAS
networks, but the object substrate capped its validation at a few
hundred peers.  The arena substrate removes the cap: this target builds
*complete* balanced networks of ``2**depth`` peers as
:class:`~repro.overlays.arena.MidasArena` snapshots (empty stores — the
lemmas are pure traversal facts) and runs never-pruning queries through
the real engines, asserting the measured critical-path latency equals
the closed-form lemma value **exactly**:

* ``fast`` (Lemma 1) runs through the batched wavefront engine at every
  depth — including the paper-scale 2**20 = 1M-peer network;
* ``r=1``/``r=2`` (Lemma 3) and ``slow`` (Lemma 2) are inherently
  sequential traversals of all ``2**depth`` peers, so they are validated
  up to :data:`SEQUENTIAL_DEPTH_CAP` (the lemma formulas are
  depth-parametric — the curve, not the endpoint, is the claim).

Every row also pins ``processed == 2**depth`` (never-pruning queries
must touch every peer) and reports build/query wall seconds, so the
table doubles as a substrate scaling profile.
"""

from __future__ import annotations

import time

from ..common.scoring import LinearScore
from ..core.analysis import fast_latency, ripple_latency, slow_latency
from ..core.framework import SLOW, run_ripple
from ..overlays.arena import run_wavefront
from ..overlays.arena_build import midas_arena
from ..queries.topk import TopKHandler
from .config import ExperimentConfig

__all__ = ["SEQUENTIAL_DEPTH_CAP", "print_scale_rows", "scale_profile"]

#: Sequential-mode traversals (r >= 1, slow) visit all peers one hop at a
#: time in the simulator's inner loop; beyond 2**13 peers they measure
#: Python overhead, not the lemmas, so the curves are validated up to
#: this depth and ``fast`` alone continues to 1M peers.
SEQUENTIAL_DEPTH_CAP = 13

_MODES = (
    ("fast", 0, fast_latency),
    ("r=1", 1, lambda depth: ripple_latency(depth, 1)),
    ("r=2", 2, lambda depth: ripple_latency(depth, 2)),
    ("slow", SLOW, slow_latency),
)


def _wallclock() -> float:
    """Monotonic seconds for the profile's build/query columns.

    This module reports *operator-facing* wall time (how long the arena
    takes to build and traverse on the current machine) — the same
    sanctioned consumer role as the experiment runner's progress clock;
    all latencies in the table are virtual hop counts.
    """
    return time.perf_counter()


def scale_profile(config: ExperimentConfig) -> list[dict[str, object]]:
    """Lemma-validation rows over complete arenas of ``2**depth`` peers."""
    rows: list[dict[str, object]] = []
    handler = TopKHandler(LinearScore([1.0, 1.0]), 10 ** 9)  # never prunes
    for depth in config.scale_depths:
        start = _wallclock()
        arena = midas_arena(1 << depth, dims=2, seed=config.seed,
                            precompute_links=True)
        build_s = _wallclock() - start
        for mode, r, formula in _MODES:
            if r != 0 and depth > SEQUENTIAL_DEPTH_CAP:
                continue
            start = _wallclock()
            if r == 0:
                result = run_wavefront(arena.peer(0), handler,
                                       restriction=arena.domain())
            else:
                result = run_ripple(arena.peer(0), handler, r,
                                    restriction=arena.domain())
            query_s = _wallclock() - start
            expected = formula(depth)
            rows.append({
                "depth": depth,
                "peers": 1 << depth,
                "mode": mode,
                "latency": result.stats.latency,
                "lemma": expected,
                "match": result.stats.latency == expected
                and result.stats.processed == (1 << depth),
                "processed": result.stats.processed,
                "build_s": build_s,
                "query_s": query_s,
            })
    return rows


def print_scale_rows(rows: list[dict[str, object]]) -> None:
    header = (f"{'peers':>9s} {'mode':>5s} {'latency':>8s} {'lemma':>8s} "
              f"{'match':>6s} {'processed':>10s} {'build':>7s} {'query':>8s}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['peers']:>9d} {row['mode']:>5s} {row['latency']:>8d} "
              f"{row['lemma']:>8d} {str(row['match']):>6s} "
              f"{row['processed']:>10d} {row['build_s']:>6.1f}s "
              f"{row['query_s']:>7.1f}s")
    if not all(row["match"] for row in rows):
        raise SystemExit("scale: measured latency diverged from Lemmas 1-3")
