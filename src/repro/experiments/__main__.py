"""Command-line entry point for regenerating the paper's figures.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig4 [--scale smoke|default]
    python -m repro.experiments all --scale smoke

Each figure prints one aligned table per metric (latency in hops,
congestion in peers per query), with one column per method — the series
the paper plots.  ``--scale paper`` selects the full Table 1 grid, which
takes hours; ``default`` (the setting used for EXPERIMENTS.md) keeps the
same code paths at laptop scale.
"""

from __future__ import annotations

import argparse
import sys
import time

from .analysis_figures import (ablation_link_policy, decreasing_stage,
                               lemmas_table)
from .config import default_config, paper_config, smoke_config
from .diversify_figures import (fig10_div_dims, fig11_div_k,
                                fig12_div_lambda, fig9_div_scale)
from .runner import ascii_chart, print_rows, rows_to_csv
from .skyline_figures import fig7_skyline_scale, fig8_skyline_dims
from .topk_figures import fig4_topk_scale, fig5_topk_dims, fig6_topk_k

FIGURES = {
    "fig4": (fig4_topk_scale, "top-k vs overlay size (NBA)"),
    "fig5": (fig5_topk_dims, "top-k vs dimensionality (SYNTH)"),
    "fig6": (fig6_topk_k, "top-k vs result size (NBA)"),
    "fig7": (fig7_skyline_scale, "skyline vs overlay size (NBA)"),
    "fig8": (fig8_skyline_dims, "skyline vs dimensionality (SYNTH)"),
    "fig9": (fig9_div_scale, "diversification vs overlay size (MIRFLICKR)"),
    "fig10": (fig10_div_dims, "diversification vs dimensionality (SYNTH)"),
    "fig11": (fig11_div_k, "diversification vs result size (MIRFLICKR)"),
    "fig12": (fig12_div_lambda, "diversification vs lambda (MIRFLICKR)"),
}

SCALES = {"smoke": smoke_config, "default": default_config,
          "paper": paper_config}


def _wallclock() -> float:
    """Real seconds since the epoch, for progress reporting only.

    Experiments are the one sanctioned wall-clock consumer in the
    codebase: figure regeneration reports how long each target took on
    the operator's machine.  Everything measured *inside* a simulation
    uses virtual time.  RPL002 allowlists exactly this helper; simulation
    code must never grow one.
    """
    return time.time()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.experiments")
    parser.add_argument("figure",
                        choices=[*FIGURES, "lemmas", "ablation",
                                 "decreasing", "load", "scale", "all",
                                 "list"])
    parser.add_argument("--scale", choices=list(SCALES), default="default")
    parser.add_argument("--csv", metavar="PATH",
                        help="also write the rows as CSV to PATH")
    parser.add_argument("--chart", action="store_true",
                        help="render ASCII charts after the tables")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="record one representative query of the "
                             "figure's family with a trace sink attached "
                             "and export it (.jsonl = JSONL record stream, "
                             "anything else = Perfetto trace_event JSON)")
    args = parser.parse_args(argv)

    if args.figure == "list":
        for name, (_, description) in FIGURES.items():
            print(f"{name:8s} {description}")
        print("lemmas   worst-case latency: measured vs Lemmas 1-3")
        print("ablation Section 5.2 link policy: random vs boundary")
        print("decreasing  top-k during the decreasing (departure) stage")
        print("load     concurrent engine: p50/p99/shedding vs arrival rate")
        print("scale    Lemma 1-3 latency at 10k-1M peers (arena substrate)")
        return 0

    config = SCALES[args.scale]()
    targets = (list(FIGURES) + ["lemmas", "ablation", "decreasing", "load",
                                "scale"]
               if args.figure == "all" else [args.figure])
    for target in targets:
        start = _wallclock()
        if target == "lemmas":
            print_rows(lemmas_table(), metrics=("latency",))
        elif target == "ablation":
            print_rows(ablation_link_policy(config),
                       metrics=("latency", "congestion", "tuples_shipped"))
        elif target == "decreasing":
            rows = decreasing_stage(config)
            print_rows(rows)
            _extras(rows, args)
        elif target == "load":
            from .load_profile import load_profile, print_load_rows
            print_load_rows(load_profile(config))
        elif target == "scale":
            from .scale_profile import print_scale_rows, scale_profile
            print_scale_rows(scale_profile(config))
        else:
            figure, _ = FIGURES[target]
            rows = figure(config)
            print_rows(rows)
            _extras(rows, args)
        print(f"# {target} finished in {_wallclock() - start:.1f}s\n")
    if args.trace_out:
        from .tracing import trace_figure
        trace_figure(targets[-1], config, args.trace_out)
    return 0


def _extras(rows: list[dict[str, object]], args: argparse.Namespace) -> None:
    if args.csv:
        rows_to_csv(rows, args.csv)
    if args.chart:
        for metric in ("latency", "congestion"):
            print(ascii_chart(rows, metric))
            print()


if __name__ == "__main__":
    sys.exit(main())
