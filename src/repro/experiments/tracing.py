"""Record one representative traced query per figure family.

``python -m repro.experiments fig7 --trace-out fig7.json`` regenerates the
figure as usual and *additionally* runs a single query of the figure's
family (top-k for fig4-6, skyline for fig7-8, diversification for
fig9-12) with a recording :class:`~repro.obs.QueryTrace` attached, writes
the trace next to the tables, and prints the critical-path summary.  The
export format follows the file extension: ``.jsonl`` writes the flat
JSONL record stream, anything else the Chrome/Perfetto ``trace_event``
JSON (open it at ``ui.perfetto.dev``).
"""

from __future__ import annotations

import numpy as np

from ..common.scoring import LinearScore
from ..obs import QueryTrace, write_jsonl, write_perfetto
from ..obs.traceview import render
from ..queries.diversify import (DiversificationObjective, RippleDiversifier,
                                 greedy_diversify)
from ..queries.skyline import distributed_skyline
from ..queries.topk import distributed_topk
from .builders import build_midas, mirflickr, nba_min, nba_raw
from .config import ExperimentConfig

__all__ = ["FAMILIES", "trace_figure"]

#: Figure target -> query family whose representative trace is recorded.
FAMILIES = {
    "fig4": "topk", "fig5": "topk", "fig6": "topk",
    "lemmas": "topk", "ablation": "topk", "decreasing": "topk",
    "fig7": "skyline", "fig8": "skyline",
    "fig9": "diversify", "fig10": "diversify",
    "fig11": "diversify", "fig12": "diversify",
    "load": "load",
}


def _run_traced(family: str, config: ExperimentConfig,
                trace: QueryTrace) -> None:
    seed = config.network_seeds[0]
    rng = np.random.default_rng(seed)
    if family == "load":
        # A whole overloaded workload, not one query: the exported trace
        # shows per-query root spans interleaving on shared peers.
        from .load_profile import trace_overloaded_workload
        trace_overloaded_workload(config, trace)
        return
    if family == "diversify":
        data = mirflickr(config, seed)
        overlay = build_midas(data, config.div_default_size, seed)
        objective = DiversificationObjective(
            data[int(rng.integers(len(data)))], config.default_lambda, p=1)
        engine = RippleDiversifier(overlay, overlay.random_peer(rng),
                                   r=0, sink=trace)
        greedy_diversify(engine, objective, config.div_k,
                         max_iters=config.div_max_iters)
        return
    if family == "skyline":
        data = nba_min(config, seed)
        overlay = build_midas(data, config.default_size, seed)
        distributed_skyline(overlay.random_peer(rng), data.shape[1],
                            restriction=overlay.domain(), r=0, sink=trace)
        return
    data = nba_raw(config, seed)
    overlay = build_midas(data, config.default_size, seed)
    distributed_topk(overlay.random_peer(rng),
                     LinearScore([1.0] * data.shape[1]),
                     config.default_k, restriction=overlay.domain(),
                     r=0, sink=trace)


def trace_figure(target: str, config: ExperimentConfig, path: str) -> None:
    """Record a representative ``target``-family query and export it."""
    family = FAMILIES.get(target, "topk")
    trace = QueryTrace()
    _run_traced(family, config, trace)
    if path.endswith(".jsonl"):
        write_jsonl(trace, path)
    else:
        write_perfetto(trace, path)
    print(f"# trace ({family}) written to {path}")
    print(render(trace))
