"""RIPPLE: a scalable framework for distributed processing of rank queries.

Reproduction of Tsatsanifos, Sacharidis & Sellis, EDBT 2014.

Public API quick reference::

    from repro import MidasOverlay, TopKHandler, LinearScore, run_ripple

    overlay = MidasOverlay(dims=6, seed=7, join_policy="data")
    overlay.load(dataset)                       # (n, 6) array of tuples
    overlay.grow_to(1024)
    handler = TopKHandler(LinearScore([1] * 6), k=10)
    result = run_ripple(overlay.random_peer(), handler, r=2,
                        restriction=overlay.domain())
    result.answer                               # [(score, tuple), ...]
    result.stats.latency, result.stats.processed

Higher-level entry points: :func:`repro.queries.topk.distributed_topk`,
:func:`repro.queries.skyline.distributed_skyline`,
:func:`repro.queries.diversify.greedy_diversify`.  Competitor baselines
live in :mod:`repro.baselines`; the experiment suite regenerating every
figure of the paper is ``python -m repro.experiments``.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from .common.geometry import Frustum, Interval, Point, Rect, dominates
from .common.scoring import LinearScore, NearestScore, ScoringFunction
from .common.store import LocalStore, Replica
from .core.framework import Link, SLOW, physical_id, run_fast, run_ripple, \
    run_slow
from .core.handler import QueryHandler
from .core.regions import (ArcRegion, FrustumRegion, RectRegion, Region,
                           domain_region)
from .net.adaptive import (AdaptiveFanout, CostEstimate, CostModel,
                           EngineLoad, calibrate_fanout)
from .net.context import QueryResult, QueryStats
from .net.detector import FailureDetector
from .net.resultcache import (CacheDirectory, CacheEntry, CacheLookup,
                              handler_fingerprint, region_fingerprint)
from .net.eventsim import SimulationBudgetExceeded, event_driven_ripple
from .net.faults import FaultPlan, resilient_ripple
from .net.scheduler import (AdmissionPolicy, FifoPolicy, PriorityPolicy,
                            QueryBudgetExceeded, QueryCompleted,
                            QueryDeadlineExceeded, QueryEngine, QueryJob,
                            QueryOutcome, QueryRejected, WeightedFairPolicy)
from .net.workload import (WorkloadReport, WorkloadSpec, poisson_arrivals,
                           run_workload)
from .obs import (MetricsRegistry, NullSink, QueryTrace, TraceSink,
                  critical_path, metrics_of, replay)
from .overlays.baton import BatonOverlay, BatonPeer
from .overlays.can import CanOverlay, CanPeer
from .overlays.chord import ChordOverlay, ChordPeer
from .overlays.midas import MidasOverlay, MidasPeer
from .overlays.replication import PromotedPeer, ReplicaDirectory
from .overlays.skipgraph import SkipGraphOverlay, SkipGraphPeer
from .overlays.zcurve import ZCurve
from .queries.diversify import (DiversificationObjective, RippleDiversifier,
                                greedy_diversify)
from .queries.rangeq import RangeHandler
from .queries.skyline import SkylineHandler, distributed_skyline, skyline_reference
from .queries.topk import TopKHandler, distributed_topk, topk_reference

__version__ = "1.0.0"

__all__ = [
    "AdaptiveFanout",
    "AdmissionPolicy",
    "ArcRegion",
    "BatonOverlay",
    "BatonPeer",
    "CacheDirectory",
    "CacheEntry",
    "CacheLookup",
    "CanOverlay",
    "CanPeer",
    "ChordOverlay",
    "ChordPeer",
    "CostEstimate",
    "CostModel",
    "DiversificationObjective",
    "EngineLoad",
    "FailureDetector",
    "FaultPlan",
    "FifoPolicy",
    "Frustum",
    "FrustumRegion",
    "Interval",
    "LinearScore",
    "Link",
    "LocalStore",
    "MetricsRegistry",
    "MidasOverlay",
    "MidasPeer",
    "NearestScore",
    "NullSink",
    "Point",
    "PriorityPolicy",
    "PromotedPeer",
    "QueryBudgetExceeded",
    "QueryCompleted",
    "QueryDeadlineExceeded",
    "QueryEngine",
    "QueryHandler",
    "QueryJob",
    "QueryOutcome",
    "QueryRejected",
    "QueryResult",
    "QueryStats",
    "QueryTrace",
    "RangeHandler",
    "Rect",
    "RectRegion",
    "Region",
    "Replica",
    "ReplicaDirectory",
    "RippleDiversifier",
    "SLOW",
    "ScoringFunction",
    "SimulationBudgetExceeded",
    "SkipGraphOverlay",
    "SkipGraphPeer",
    "SkylineHandler",
    "TopKHandler",
    "TraceSink",
    "WeightedFairPolicy",
    "WorkloadReport",
    "WorkloadSpec",
    "ZCurve",
    "calibrate_fanout",
    "critical_path",
    "distributed_skyline",
    "distributed_topk",
    "domain_region",
    "dominates",
    "event_driven_ripple",
    "greedy_diversify",
    "handler_fingerprint",
    "metrics_of",
    "physical_id",
    "poisson_arrivals",
    "region_fingerprint",
    "replay",
    "resilient_ripple",
    "run_fast",
    "run_ripple",
    "run_slow",
    "run_workload",
    "skyline_reference",
    "topk_reference",
    "__version__",
]
