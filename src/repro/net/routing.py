"""Overlay-agnostic greedy DHT routing.

Every RIPPLE-compatible overlay gives each peer link regions that
partition the domain outside the peer's own zone, so a lookup needs no
overlay-specific code: forward to the (unique) link whose region contains
the target key, until no link region does — the current peer is then
responsible.  Over MIDAS this is the standard O(log n) lookup; over Chord
it is finger routing; over CAN it follows the frustums greedily.

:func:`route_around` is the failure-aware complement used by the
resilient engine (:mod:`repro.net.faults`): when greedy routing would
have to cross a dead peer, it searches the live part of the link graph
for an alternate peer able to coordinate the stranded region.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids a package cycle)
    from ..core.framework import PeerLike
    from ..core.regions import Region

__all__ = ["greedy_route", "route_around", "RoutingError"]

_MAX_HOPS = 100_000


class RoutingError(RuntimeError):
    """Routing did not converge (broken region partition or a cycle)."""


def greedy_route(start: PeerLike, point: Sequence[float], *,
                 max_hops: int = _MAX_HOPS) -> tuple[PeerLike, list[PeerLike]]:
    """The peer responsible for ``point`` plus the path taken to reach it.

    Returns ``(responsible_peer, path)`` where ``path`` starts at ``start``
    and ends at the responsible peer; the hop count is ``len(path) - 1``.
    """
    peer = start
    path = [start]
    seen = {start.peer_id}
    for _ in range(max_hops):
        next_peer = None
        for link in peer.links():
            if link.region.contains(point):
                next_peer = link.peer
                break
        if next_peer is None:
            return peer, path
        if next_peer.peer_id in seen:
            raise RoutingError(
                f"routing loop at peer {next_peer.peer_id!r} toward {point}")
        seen.add(next_peer.peer_id)
        path.append(next_peer)
        peer = next_peer
    raise RoutingError(f"no convergence after {max_hops} hops toward {point}")


def route_around(
    start: PeerLike,
    region: "Region",
    alive: Callable[[Hashable], bool],
    *,
    exclude: Iterable[Hashable] = (),
    max_peers: int = _MAX_HOPS,
) -> tuple["PeerLike | None", int]:
    """Find a live peer able to coordinate ``region``, avoiding dead links.

    Breadth-first search over the link graph, traversing only links whose
    targets satisfy ``alive``, for the nearest peer (other than ``start``
    and the ``exclude`` set) with at least one link region intersecting
    ``region`` — such a peer can re-issue the stranded sub-query and cover
    whatever part of the region is still reachable.  Returns the peer and
    its hop distance from ``start``, or ``(None, 0)`` when the live
    component holds no such coordinator.
    """
    excluded = set(exclude)
    seen = {start.peer_id}
    queue: deque[tuple[PeerLike, int]] = deque([(start, 0)])
    visited = 0
    while queue and visited < max_peers:
        peer, hops = queue.popleft()
        visited += 1
        if (hops > 0 and peer.peer_id not in excluded
                and any(link.region.intersect(region) is not None
                        for link in peer.links())):
            return peer, hops
        for link in peer.links():
            neighbor = link.peer
            if neighbor.peer_id in seen or not alive(neighbor.peer_id):
                continue
            seen.add(neighbor.peer_id)
            queue.append((neighbor, hops + 1))
    return None, 0
