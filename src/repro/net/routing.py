"""Overlay-agnostic greedy DHT routing.

Every RIPPLE-compatible overlay gives each peer link regions that
partition the domain outside the peer's own zone, so a lookup needs no
overlay-specific code: forward to the (unique) link whose region contains
the target key, until no link region does — the current peer is then
responsible.  Over MIDAS this is the standard O(log n) lookup; over Chord
it is finger routing; over CAN it follows the frustums greedily.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids a package cycle)
    from ..core.framework import PeerLike

__all__ = ["greedy_route", "RoutingError"]

_MAX_HOPS = 100_000


class RoutingError(RuntimeError):
    """Routing did not converge (broken region partition or a cycle)."""


def greedy_route(start: PeerLike, point: Sequence[float]
                 ) -> tuple[PeerLike, list[PeerLike]]:
    """The peer responsible for ``point`` plus the path taken to reach it.

    Returns ``(responsible_peer, path)`` where ``path`` starts at ``start``
    and ends at the responsible peer; the hop count is ``len(path) - 1``.
    """
    peer = start
    path = [start]
    seen = {start.peer_id}
    for _ in range(_MAX_HOPS):
        next_peer = None
        for link in peer.links():
            if link.region.contains(point):
                next_peer = link.peer
                break
        if next_peer is None:
            return peer, path
        if next_peer.peer_id in seen:
            raise RoutingError(
                f"routing loop at peer {next_peer.peer_id!r} toward {point}")
        seen.add(next_peer.peer_id)
        path.append(next_peer)
        peer = next_peer
    raise RoutingError(f"no convergence after {_MAX_HOPS} hops toward {point}")
