"""Deterministic fault injection for the event-driven RIPPLE engine.

The paper's cost model (Lemmas 1–3) assumes a flawless network: every
peer is alive, every forward arrives, every response returns.  Real DHT
deployments — the setting RIPPLE targets — face churn and message loss,
and rank-query structures must be evaluated under failure to be credible
(cf. the fault-tolerance literature on structured overlays, e.g. the
Rainbow Skip Graph).  This module supplies the failure side of that
evaluation:

* :class:`FaultPlan` — a seeded, fully deterministic schedule of peer
  crash/recovery windows, per-message drop decisions, and per-forward
  latency jitter.  The :class:`~repro.net.eventsim.EventSimulator`
  consults the plan on every delivery, so two runs with the same plan are
  bit-identical.
* :func:`resilient_ripple` — the fault-tolerant counterpart of
  :func:`~repro.net.eventsim.event_driven_ripple`.  Forwards are
  supervised with acknowledgement timeouts, bounded retries under
  exponential backoff, liveness watchdogs, and re-routing of stranded
  restriction regions through alternate live peers
  (:func:`~repro.net.routing.route_around`).  When every recovery avenue
  is exhausted the region is *abandoned* and its volume accounted, so the
  query always terminates with a partial answer and an explicit
  **completeness** bound (see :mod:`repro.net.context`).

Fault model (also documented in ``docs/ALGORITHMS.md``):

* **Crash-stop with amnesia** — a peer is down during scheduled windows;
  messages delivered to a down peer vanish.  A peer that recovers serves
  new requests but has lost all in-flight query state (its *incarnation*
  number changed).  A crashed peer that never shipped its local answer is
  un-marked from the processed set so a retry may re-process its data.
* **Lossy forwards and responses** — query forwards, acks, and state
  responses are each dropped independently with ``drop_prob``; answer
  uploads to the initiator ride a reliable channel (they already add no
  propagation delay in the engine's latency convention).
* **Jitter** — each forward takes ``1 + U{0..jitter}`` time units.

With a zero-fault plan (``FaultPlan.none()``) the supervised execution
reproduces the fault-free engines *exactly* — same answers, processed
sets, message counts, and latencies — which ``tests/net/test_faults.py``
cross-validates property-style against the recursive engine.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any, Hashable, Iterable, Mapping, Sequence

import numpy as np

from ..common.hashing import mix
from ..core.framework import SLOW, OverlayLike, PeerLike
from ..core.handler import QueryHandler
from ..core.regions import Region, region_volume
from ..obs.trace import TraceSink
from .context import QueryContext, QueryResult
from .detector import FailureDetector
from .eventsim import EventSimulator, _Invocation

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids an import cycle)
    from ..overlays.replication import ReplicaDirectory

__all__ = ["FaultPlan", "region_volume", "resilient_ripple"]

_SCALE = float(1 << 64)
_DROP_SALT = 0xD20B
_JITTER_SALT = 0x1A77
_CHURN_SALT = 0xC4A5


class FaultPlan:
    """A deterministic, seeded schedule of failures for one simulation.

    ``crashes`` maps a peer id to its down-time windows ``[down, up)``
    (``up`` may be ``math.inf`` for a peer that never recovers).  Windows
    are normalized to a sorted tuple.  Message-level decisions (drops,
    jitter) are derived by hashing the plan seed with a per-message
    sequence number, so they depend only on the deterministic event order.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        drop_prob: float = 0.0,
        jitter: int = 0,
        crashes: Mapping[Hashable, Sequence[tuple[float, float]]] | None = None,
        ack_timeout: int = 4,
        max_retries: int = 3,
        watchdog_base: int = 8,
        max_watchdogs: int = 24,
        max_reroute_depth: int = 2,
        heartbeat_period: int = 4,
        suspect_after: int = 1,
        dead_after: int = 2,
    ) -> None:
        if not 0.0 <= drop_prob < 1.0:
            raise ValueError(f"drop_prob must be in [0, 1), got {drop_prob}")
        if jitter < 0:
            raise ValueError("jitter must be non-negative")
        self.seed = seed
        self.drop_prob = drop_prob
        self.jitter = jitter
        self.crashes: dict[Hashable, tuple[tuple[float, float], ...]] = {}
        for peer_id, windows in (crashes or {}).items():
            cleaned = tuple(sorted((float(d), float(u)) for d, u in windows))
            for down, up in cleaned:
                if up <= down:
                    raise ValueError(
                        f"empty crash window [{down}, {up}) for {peer_id!r}")
            if cleaned:
                self.crashes[peer_id] = cleaned
        self.ack_timeout = ack_timeout
        self.max_retries = max_retries
        self.watchdog_base = watchdog_base
        self.max_watchdogs = max_watchdogs
        self.max_reroute_depth = max_reroute_depth
        #: Failure-detector knobs (see :mod:`repro.net.detector`): probe
        #: period and how many consecutive missed probes mark a peer
        #: SUSPECT respectively DEAD.
        self.heartbeat_period = heartbeat_period
        self.suspect_after = suspect_after
        self.dead_after = dead_after
        #: Peers exempt from every fault (e.g. the query initiator: a
        #: client does not crash-stop its own query).
        self.protected: set[Hashable] = set()

    # -- construction ------------------------------------------------------

    @classmethod
    def none(cls, *, seed: int = 0) -> "FaultPlan":
        """A plan that injects nothing; the supervised engine's identity."""
        return cls(seed=seed)

    @classmethod
    def churn(
        cls,
        peers: Iterable[Hashable] | OverlayLike,
        *,
        crash_fraction: float,
        seed: int = 0,
        horizon: int = 64,
        recovery: int | None = None,
        drop_prob: float = 0.0,
        jitter: int = 0,
        **knobs: int,
    ) -> "FaultPlan":
        """Schedule each peer to crash with probability ``crash_fraction``.

        ``peers`` is an overlay (anything with ``.peers()``) or an
        iterable of peer ids.  Crash times are uniform over ``[0,
        horizon)``; peers stay down forever unless ``recovery`` bounds the
        outage length (down for ``1 + U{0..recovery-1}`` units).
        """
        if not 0.0 <= crash_fraction <= 1.0:
            raise ValueError(
                f"crash_fraction must be within [0, 1], got {crash_fraction}")
        if isinstance(peers, OverlayLike):
            ids: list[Hashable] = [p.peer_id for p in peers.peers()]
        else:
            ids = list(peers)
        rng = np.random.default_rng(mix(seed, _CHURN_SALT))
        crashes: dict[Hashable, list[tuple[float, float]]] = {}
        for peer_id in ids:
            if rng.random() >= crash_fraction:
                continue
            down = float(rng.integers(0, horizon))
            up = math.inf if recovery is None \
                else down + 1.0 + float(rng.integers(0, recovery))
            crashes[peer_id] = [(down, up)]
        return cls(seed=seed, drop_prob=drop_prob, jitter=jitter,
                   crashes=crashes, **knobs)

    @classmethod
    def from_overlay(cls, overlay: OverlayLike, *, seed: int = 0,
                     **knobs: int) -> "FaultPlan":
        """Freeze the overlay's per-peer ``alive`` flags into a plan.

        Peers flagged dead (``peer.alive == False``) are down from time 0
        and never recover — a static partial-failure scenario.
        """
        crashes = {
            peer.peer_id: [(0.0, math.inf)]
            for peer in overlay.peers()
            if not getattr(peer, "alive", True)
        }
        return cls(seed=seed, crashes=crashes, **knobs)

    # -- liveness ----------------------------------------------------------

    def protect(self, peer_id: Hashable) -> None:
        self.protected.add(peer_id)

    def alive(self, peer_id: Hashable, time: float) -> bool:
        if peer_id in self.protected:
            return True
        windows = self.crashes.get(peer_id)
        if not windows:
            return True
        return not any(down <= time < up for down, up in windows)

    def incarnation(self, peer_id: Hashable, time: float) -> int:
        """Number of crashes the peer has suffered up to ``time``.

        An invocation records the incarnation at its start; any later
        mismatch means the peer lost its in-flight state in between.
        """
        if peer_id in self.protected:
            return 0
        windows = self.crashes.get(peer_id)
        if not windows:
            return 0
        return sum(1 for down, _ in windows if down <= time)

    # -- per-message draws -------------------------------------------------

    def drops(self, message_id: int) -> bool:
        """Deterministic verdict: is this message delivery lost?"""
        if self.drop_prob <= 0.0:
            return False
        return mix(self.seed, _DROP_SALT, message_id) / _SCALE < self.drop_prob

    def forward_delay(self, message_id: int) -> int:
        """Propagation delay of a query forward: 1 hop plus jitter."""
        if self.jitter <= 0:
            return 1
        return 1 + mix(self.seed, _JITTER_SALT, message_id) % (self.jitter + 1)

    @property
    def can_fail(self) -> bool:
        return bool(self.crashes) or self.drop_prob > 0.0

    def __repr__(self) -> str:
        return (f"FaultPlan(seed={self.seed}, drop_prob={self.drop_prob}, "
                f"jitter={self.jitter}, crashed_peers={len(self.crashes)})")


def resilient_ripple(
    initiator: PeerLike,
    handler: QueryHandler,
    r: int = 0,
    *,
    restriction: Region,
    faults: FaultPlan | None = None,
    replicas: "ReplicaDirectory | None" = None,
    max_events: int | None = None,
    sink: "TraceSink | None" = None,
) -> QueryResult:
    """Run Algorithm 3 through the fault-supervised event-driven engine.

    Mirrors :func:`~repro.net.eventsim.event_driven_ripple` but executes
    under ``faults`` (default: a zero-fault plan, which reproduces the
    fault-free engines exactly).  The initiator is automatically
    protected from crashing — a client does not crash-stop its own query.
    Degraded executions terminate with partial answers; inspect
    ``result.stats.completeness`` and the fault counters.

    ``replicas`` (a :class:`~repro.overlays.replication.ReplicaDirectory`)
    enables self-healing: the directory is refreshed against the overlay,
    a heartbeat :class:`~repro.net.detector.FailureDetector` runs for the
    duration of the query (patching links of detector-confirmed-dead
    peers), and restriction regions stranded on crashed peers are
    re-issued against promoted replica holders instead of being abandoned
    — so whenever every crashed peer has at least one live replica, the
    query returns the *exact* fault-free answer with completeness 1.0
    (counted in ``stats.regions_recovered`` / ``stats.replica_reads``).
    With a zero-fault plan the detector never starts and the execution
    stays bit-identical to the fault-free engines, replicas or not.

    Runs the context in non-strict mode: fault recovery implies
    at-least-once delivery, so duplicate visits are deduplicated (their
    local answers are never double-counted) rather than treated as a
    simulator error.
    """
    plan = faults if faults is not None else FaultPlan.none()
    plan.protect(initiator.peer_id)
    sim = EventSimulator(faults=plan) if max_events is None else \
        EventSimulator(faults=plan, max_events=max_events)
    ctx = QueryContext(strict=False)
    if sink is not None:
        ctx.sink = sink
    ctx.restriction_volume = region_volume(restriction)
    sim.context = ctx
    detector = None
    if replicas is not None:
        replicas.refresh()
        sim.replicas = replicas
        if plan.can_fail:
            detector = FailureDetector(
                sim, plan, (p.peer_id for p in replicas.owners()),
                on_dead=lambda pid: replicas.repair(
                    pid, lambda hid: plan.alive(hid, sim.now)),
                on_alive=replicas.demote)
            sim.detector = detector
            detector.start()

    def finish(states: list[Any]) -> None:
        if detector is not None:
            detector.stop()

    root = _Invocation(sim, ctx, handler, initiator,
                       handler.initial_state(), restriction,
                       min(r, SLOW), initiator.peer_id, finish)
    sim.schedule(0, root.start, ctx)
    sim.run()
    answer = handler.finalize(ctx.collected_answers)
    return QueryResult(answer=answer, stats=ctx.stats(ctx.last_activity))
