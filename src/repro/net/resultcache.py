"""Versioned query-result cache with semantic reuse.

Heavy traffic is skewed traffic (ROADMAP item 4): the same top-k and
skyline queries recur, yet every execution recomputes from scratch.  The
:class:`CacheDirectory` closes that gap with two reuse tiers, both of
which preserve the repo's bit-identity contract — a warm answer is the
answer the cold run would have produced, byte for byte.

**Exact reuse.**  A completed query is remembered under the key
``(handler fingerprint, restriction fingerprint)`` together with the
frozen set of ``(peer_id, store version)`` pairs it actually touched
(the query context's ``processed`` ledger joined with the live store
versions — sound because the simulation is single-threaded and queries
never mutate stores).  An entry is served only while *every* touched
store still sits at its recorded version.  Invalidation is push-style
and exact: the directory subscribes to every store's version bumps
(:meth:`~repro.common.store.LocalStore.subscribe`), so an insert, bulk
load, zone split (``extract``) or merge (``take_all``) synchronously
drops precisely the entries that touched the mutated store — and no
others.  Overlay membership changes (MIDAS splits/merges, ring joins)
are caught by comparing the overlay epoch on every access and
reconciling the peer registry; a crash promoting a replica is reported
through :meth:`invalidate_peer` (the scheduler wires it to the failure
detector's ``on_dead``).  A stale answer is therefore structurally
impossible: serving requires every touched ``(peer, version)`` pair to
be live and current.

**Semantic reuse.**  A fresh entry whose scope *covers* the new query
can help even when the keys differ:

* a cached top-k for the same scoring function over a superset region
  seeds the new query's :class:`~repro.queries.topk.TopKState` *floor*
  with the k-th best cached score among tuples inside the new region —
  at least k true candidates reach that score, so the seeded threshold
  ``tau`` never exceeds the true k-th best and pruning stays sound
  (links are cut before the first hop, the answer is unchanged; floors
  merge by max, so re-harvesting a seeded tuple at its owner can never
  double-count it);
* a cached top-k' for the *same* region with ``k' >= k`` yields the
  top-k directly (a prefix of the deterministically tie-broken list);
* a cached skyline for a superset region/constraint seeds the partial
  skyline with its members inside the new scope — each is non-dominated
  among *more* competitors, hence a true member of the new skyline, and
  an antichain never prunes the region of another skyline member;
* a cached range scan over a superset box/region filters down to the
  exact new answer without touching the network.

Soundness sketches live in ``docs/CACHING.md``; the property tests in
``tests/net/test_resultcache.py`` pin warm == cold across the full
overlay × handler × engine matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable

from ..common.geometry import Rect
from ..common.scoring import LinearScore, NearestScore, ScoringFunction
from ..common.store import LocalStore
from ..core.handler import QueryHandler
from ..core.regions import ArcRegion, RectRegion, Region
from ..obs.metrics import MetricsRegistry
from ..queries.rangeq import RangeHandler
from ..queries.skyline import SkylineHandler, SkylineState
from ..queries.topk import TopKHandler, TopKState
from .context import QueryResult

__all__ = ["CacheDirectory", "CacheEntry", "CacheLookup",
           "handler_fingerprint", "region_fingerprint"]

#: Default bound on retained entries; far above any benchmark's working
#: set, small enough that a directory never dominates memory.
DEFAULT_CAPACITY = 256

Fingerprint = tuple[Any, ...]


def _scoring_key(fn: ScoringFunction) -> Fingerprint | None:
    """A value-equality key for a scoring function, or None if unknown.

    Two structurally equal functions (same weights / same query point)
    must hit the same entries even when they are distinct objects — the
    workload generator builds a fresh ``LinearScore`` per arrival.
    """
    if isinstance(fn, LinearScore):
        return ("linear", fn.weights)
    if isinstance(fn, NearestScore):
        return ("nearest", fn.query, float(fn.p))
    return None


def handler_fingerprint(handler: QueryHandler) -> Fingerprint | None:
    """A value-equality cache key for a handler, or None if uncacheable.

    Only the single-round families are cacheable (multi-round
    diversification re-plans between rounds); unknown handler types are
    conservatively uncacheable.
    """
    if isinstance(handler, TopKHandler):
        fn_key = _scoring_key(handler.fn)
        if fn_key is None:
            return None
        return ("topk", fn_key, handler.k, float(handler.epsilon))
    if isinstance(handler, SkylineHandler):
        box = handler.constraint
        constraint = None if box is None else (box.lo, box.hi)
        return ("skyline", handler.dims, handler.origin, constraint)
    if isinstance(handler, RangeHandler):
        return ("range", handler.box.lo, handler.box.hi)
    return None


def region_fingerprint(region: Region) -> Fingerprint | None:
    """A value-equality key for a restriction area, or None if uncacheable.

    Frustum regions (CAN) are excluded: their covers are conservative
    and their executions run in dedup mode, so two issues of the "same"
    query may legitimately differ hop-for-hop — exactly the situation a
    bit-identity cache must stay out of.
    """
    if isinstance(region, RectRegion):
        return ("rect", region.rect.lo, region.rect.hi)
    if isinstance(region, ArcRegion):
        return ("arc", region.pieces)
    return None


def _region_covers(outer: Region, inner: Region) -> bool:
    """True when ``outer`` provably contains ``inner`` (exact shapes only)."""
    if isinstance(outer, RectRegion) and isinstance(inner, RectRegion):
        return outer.rect.contains_rect(inner.rect)
    if isinstance(outer, ArcRegion) and isinstance(inner, ArcRegion):
        return all(any(lo >= olo and hi <= ohi for olo, ohi in outer.pieces)
                   for lo, hi in inner.pieces)
    return False


def _constraint_covers(outer: Rect | None, inner: Rect | None) -> bool:
    """Constraint-box containment; ``None`` is the unconstrained universe."""
    if outer is None:
        return True
    if inner is None:
        return False
    return outer.contains_rect(inner)


@dataclass(frozen=True)
class CacheEntry:
    """One remembered answer plus the exact evidence it rests on."""

    key: Fingerprint
    handler: QueryHandler
    region: Region
    answer: Any
    #: Sorted ``(peer_id, store_version)`` pairs the producing run read.
    touched: tuple[tuple[Hashable, int], ...]
    #: Total messages of the producing run — what an exact hit saves.
    cost: int


@dataclass(frozen=True)
class CacheLookup:
    """Outcome of one :meth:`CacheDirectory.lookup`.

    ``kind`` is ``"exact"`` (serve ``answer`` without running),
    ``"seed"`` (run with ``state`` as the initial global state) or
    ``"miss"``.  Exact hits carry the producing run's message cost in
    ``saved`` for the traffic-reduction accounting.
    """

    kind: str
    answer: Any = None
    state: Any = None
    saved: int = 0

    @property
    def is_exact(self) -> bool:
        return self.kind == "exact"


_MISS = CacheLookup("miss")


class CacheDirectory:
    """Query-result cache over one overlay, with exact invalidation.

    The directory registers every peer's store at construction and
    subscribes to its version bumps; :meth:`lookup` / :meth:`store` are
    the whole client API (RPL016 enforces that sim-reachable code caches
    query answers through this class and nowhere else).  ``semantic``
    turns the superset-reuse tier on; ``registry`` mirrors the hit /
    miss / invalidation counts into shared metrics counters.
    """

    def __init__(self, overlay: Any, *, semantic: bool = True,
                 capacity: int = DEFAULT_CAPACITY,
                 registry: MetricsRegistry | None = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self._overlay = overlay
        self.semantic = semantic
        self.capacity = capacity
        self.registry = registry
        self._entries: dict[Fingerprint, CacheEntry] = {}
        self._by_peer: dict[Hashable, set[Fingerprint]] = {}
        self._stores: dict[Hashable, LocalStore] = {}
        self._listeners: dict[Hashable, Callable[[], None]] = {}
        self._epoch = self._overlay_epoch()
        for peer in overlay.peers():
            self._register(peer.peer_id, peer.store)
        self.hits = 0
        self.semantic_hits = 0
        self.misses = 0
        self.invalidations = 0
        self.messages_saved = 0

    # -- membership bookkeeping -------------------------------------------

    def _overlay_epoch(self) -> int:
        tree = getattr(self._overlay, "tree", None)
        if tree is not None and hasattr(tree, "epoch"):
            return int(tree.epoch)
        return int(getattr(self._overlay, "epoch", 0))

    def _register(self, peer_id: Hashable, store: LocalStore) -> None:
        self._stores[peer_id] = store
        listener = store.subscribe(lambda: self._drop_peer(peer_id))
        self._listeners[peer_id] = listener

    def _detach(self, peer_id: Hashable) -> None:
        store = self._stores.pop(peer_id, None)
        listener = self._listeners.pop(peer_id, None)
        if store is not None and listener is not None:
            store.unsubscribe(listener)
        self._drop_peer(peer_id)

    def sync(self) -> None:
        """Reconcile the peer registry after an overlay epoch change.

        Splits and merges already invalidate through the store listeners
        (``extract`` / ``take_all`` / ``bulk_load`` bump versions); the
        epoch scan additionally handles membership itself — departed
        peers lose their entries, joined peers get subscribed — and
        re-registration when a peer id is reused with a fresh store.
        """
        epoch = self._overlay_epoch()
        if epoch == self._epoch:
            return
        self._epoch = epoch
        current = {peer.peer_id: peer.store
                   for peer in self._overlay.peers()}
        for peer_id in list(self._stores):
            if current.get(peer_id) is not self._stores[peer_id]:
                self._detach(peer_id)
        for peer_id, store in current.items():
            if peer_id not in self._stores:
                self._register(peer_id, store)

    def invalidate_peer(self, peer_id: Hashable) -> None:
        """Drop every entry that touched ``peer_id``.

        The crash hook: a failure detector declaring a peer DEAD (and a
        replica being promoted in its place) calls this, so answers
        partly computed from the dead peer's store are never replayed.
        """
        self._drop_peer(peer_id)

    def watch_replicas(self, replicas: Any) -> None:
        """Subscribe :meth:`invalidate_peer` to a ``ReplicaDirectory``.

        After this, every :meth:`~repro.overlays.replication.ReplicaDirectory.repair`
        (a failure detector declaring an owner dead and pinning a
        takeover holder) automatically drops the entries whose evidence
        included the dead owner.  :class:`~repro.net.scheduler.QueryEngine`
        wires this when given both a cache and a replica directory.
        """
        replicas.subscribe_promotions(self.invalidate_peer)

    def _drop_peer(self, peer_id: Hashable) -> None:
        for key in sorted(self._by_peer.pop(peer_id, ()), key=repr):
            self._remove(key)

    def _remove(self, key: Fingerprint) -> None:
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        self.invalidations += 1
        self._count("cache.invalidations")
        for peer_id, _ in entry.touched:
            keys = self._by_peer.get(peer_id)
            if keys is not None:
                keys.discard(key)
                if not keys:
                    del self._by_peer[peer_id]

    def _fresh(self, entry: CacheEntry) -> bool:
        """Lazy double-check that every touched store is live and
        unmoved (push invalidation already guarantees it; this keeps the
        serving decision locally auditable)."""
        for peer_id, version in entry.touched:
            store = self._stores.get(peer_id)
            if store is None or store.version != version:
                return False
        return True

    # -- the client API ----------------------------------------------------

    def lookup(self, handler: QueryHandler,
               restriction: Region) -> CacheLookup:
        """The best reuse available for ``(handler, restriction)``."""
        self.sync()
        handler_key = handler_fingerprint(handler)
        region_key = region_fingerprint(restriction)
        if handler_key is None or region_key is None:
            return self._miss()
        entry = self._entries.get((handler_key, region_key))
        if entry is not None:
            if self._fresh(entry):
                self.hits += 1
                self.messages_saved += entry.cost
                self._count("cache.hits")
                self._count("cache.messages_saved", entry.cost)
                return CacheLookup("exact", answer=entry.answer,
                                   saved=entry.cost)
            self._remove(entry.key)
        if self.semantic:
            found = self._semantic(handler, restriction)
            if found is not None:
                self.semantic_hits += 1
                self._count("cache.semantic_hits")
                if found.is_exact:
                    self.messages_saved += found.saved
                    self._count("cache.messages_saved", found.saved)
                return found
        return self._miss()

    def store(self, handler: QueryHandler, restriction: Region,
              result: QueryResult, processed: Iterable[Hashable]) -> bool:
        """Remember a completed query; True when an entry was created.

        Only full-fidelity runs are cacheable: partial answers
        (``completeness < 1``) and runs that read promoted replicas
        (whose stores the directory does not track) are refused, as are
        handlers/regions without a fingerprint.
        """
        self.sync()
        stats = result.stats
        if stats.completeness < 1.0 or stats.replica_reads > 0:
            return False
        handler_key = handler_fingerprint(handler)
        region_key = region_fingerprint(restriction)
        if handler_key is None or region_key is None:
            return False
        touched: list[tuple[Hashable, int]] = []
        for peer_id in sorted(processed, key=repr):
            store = self._stores.get(peer_id)
            if store is None:
                return False
            touched.append((peer_id, store.version))
        if not touched:
            # A run that processed no tracked peer carries no evidence.
            return False
        key: Fingerprint = (handler_key, region_key)
        if key in self._entries:
            self._remove(key)
        while len(self._entries) >= self.capacity:
            self._remove(next(iter(self._entries)))
        entry = CacheEntry(key=key, handler=handler, region=restriction,
                           answer=result.answer, touched=tuple(touched),
                           cost=stats.total_messages)
        self._entries[key] = entry
        for peer_id, _ in entry.touched:
            self._by_peer.setdefault(peer_id, set()).add(key)
        self._count("cache.stores")
        return True

    def __len__(self) -> int:
        return len(self._entries)

    def snapshot(self) -> dict[str, int]:
        """The deterministic counter block the benchmark gate records."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "semantic_hits": self.semantic_hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "messages_saved": self.messages_saved,
        }

    # -- semantic reuse ----------------------------------------------------

    def _semantic(self, handler: QueryHandler,
                  restriction: Region) -> CacheLookup | None:
        """First (insertion-order, hence deterministic) covering entry."""
        for entry in list(self._entries.values()):
            match = self._match(entry, handler, restriction)
            if match is None:
                continue
            if not self._fresh(entry):
                self._remove(entry.key)
                continue
            return match
        return None

    def _match(self, entry: CacheEntry, handler: QueryHandler,
               restriction: Region) -> CacheLookup | None:
        if isinstance(handler, TopKHandler) \
                and isinstance(entry.handler, TopKHandler):
            return self._match_topk(entry, entry.handler, handler,
                                    restriction)
        if isinstance(handler, SkylineHandler) \
                and isinstance(entry.handler, SkylineHandler):
            return self._match_skyline(entry, entry.handler, handler,
                                       restriction)
        if isinstance(handler, RangeHandler) \
                and isinstance(entry.handler, RangeHandler):
            return self._match_range(entry, entry.handler, handler,
                                     restriction)
        return None

    def _match_topk(self, entry: CacheEntry, cached: TopKHandler,
                    handler: TopKHandler,
                    restriction: Region) -> CacheLookup | None:
        # Approximate retrieval (epsilon > 0) prunes against a slacked
        # threshold, so a seeded tau could legally change the answer
        # within the approximation bound — which breaks bit-identity.
        # Only the exact family participates in semantic reuse.
        if handler.epsilon != 0.0 or cached.epsilon != 0.0:
            return None
        if _scoring_key(handler.fn) != _scoring_key(cached.fn):
            return None
        same_region = region_fingerprint(entry.region) \
            == region_fingerprint(restriction)
        if same_region and cached.k >= handler.k:
            # The top-k is a prefix of the deterministically tie-broken
            # top-k' of the same scope.
            return CacheLookup("exact", answer=entry.answer[: handler.k],
                               saved=entry.cost)
        if not _region_covers(entry.region, restriction):
            return None
        candidates = [score for score, point in entry.answer
                      if restriction.contains(point)]
        if len(candidates) < handler.k:
            return None
        # Seed the *floor*, never the score multiset: at least k true
        # candidates of the new scope score >= candidates[k-1], so it is
        # a sound lower bound on the new k-th best — and floors merge by
        # max (idempotent), so when a seeded tuple's owner is visited
        # and re-harvests the same score, nothing is double-counted.
        # (Seeding the scores themselves would count such a tuple twice
        # in the merged multiset and push tau past the true k-th best,
        # silently dropping boundary tuples from the warm answer.)
        return CacheLookup("seed", state=TopKState((), candidates[handler.k - 1]))

    def _match_skyline(self, entry: CacheEntry, cached: SkylineHandler,
                       handler: SkylineHandler,
                       restriction: Region) -> CacheLookup | None:
        if cached.dims != handler.dims:
            return None
        if not _constraint_covers(cached.constraint, handler.constraint):
            return None
        if not _region_covers(entry.region, restriction):
            return None
        box = handler.constraint
        seeds = tuple(sorted(
            point for point in entry.answer
            if restriction.contains(point)
            and (box is None or box.contains(point))))
        if not seeds:
            return None
        # Subset scope means fewer competitors: each seed stays
        # non-dominated, i.e. is a true member of the new skyline, so
        # the seeded antichain never prunes another member's region.
        state: SkylineState = seeds
        return CacheLookup("seed", state=state)

    def _match_range(self, entry: CacheEntry, cached: RangeHandler,
                     handler: RangeHandler,
                     restriction: Region) -> CacheLookup | None:
        if not cached.box.contains_rect(handler.box):
            return None
        if not _region_covers(entry.region, restriction):
            return None
        # The cached scan already holds every stored tuple of the
        # superset scope; the subset answer is a pure filter.
        answer = sorted(point for point in entry.answer
                        if handler.box.contains(point)
                        and restriction.contains(point))
        return CacheLookup("exact", answer=answer, saved=entry.cost)

    # -- accounting --------------------------------------------------------

    def _miss(self) -> CacheLookup:
        self.misses += 1
        self._count("cache.misses")
        return _MISS

    def _count(self, name: str, amount: int = 1) -> None:
        if self.registry is not None:
            self.registry.counter(name).inc(amount)
