"""An event-driven, message-level execution of Algorithm 3.

The main simulator (:mod:`repro.core.framework`) evaluates the RIPPLE
templates *recursively* and derives latency analytically (parallel
branches take the max, sequential iterations the sum).  That is fast, but
it bakes the cost model into the traversal.  This module provides an
independent executable semantics: peers are actors exchanging timestamped
messages through a discrete-event queue, each query forward taking one
time unit.  Running the same query both ways and comparing answers,
visited sets, and latencies is a strong cross-validation of the paper's
cost model — `tests/net/test_eventsim.py` does exactly that.

Conventions matching Section 3.2's analysis (and the recursive engine):
query forwards cost 1 hop; state responses and answer deliveries are
accounted as messages but add no propagation delay (Lemma 2 counts only
the forwards; see :mod:`repro.net.context`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable

from ..core.framework import PeerLike, SLOW
from ..core.handler import QueryHandler
from ..core.regions import Region
from .context import QueryContext, QueryResult

__all__ = ["EventSimulator", "event_driven_ripple"]


class EventSimulator:
    """A minimal discrete-event engine: (time, fifo) ordered callbacks."""

    def __init__(self) -> None:
        self._queue: list[tuple[int, int, Callable[[], None]]] = []
        self._counter = itertools.count()
        self.now = 0

    def schedule(self, delay: int, action: Callable[[], None]) -> None:
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue,
                       (self.now + delay, next(self._counter), action))

    def run(self) -> int:
        """Drain the queue; returns the time of the last event."""
        last = 0
        while self._queue:
            time, _, action = heapq.heappop(self._queue)
            self.now = last = time
            action()
        return last


@dataclass
class _Invocation:
    """One peer's in-flight execution of Algorithm 3 (sequential mode).

    Mirrors the loop of lines 4-11: examine prioritized links one at a
    time, suspend on each forward, resume in :meth:`on_response`.
    """

    sim: EventSimulator
    ctx: QueryContext
    handler: QueryHandler
    peer: PeerLike
    received_state: Any
    restriction: Region
    r: int
    initiator_id: Hashable
    on_done: Callable[[list[Any]], None]
    local_state: Any = None
    global_state: Any = None
    pending: list = field(default_factory=list)

    def start(self) -> None:
        processes = self.ctx.begin_processing(self.peer.peer_id)
        if processes:
            self.local_state = self.handler.compute_local_state(
                self.peer.store, self.received_state)
        else:
            self.local_state = self.handler.neutral_local_state()
        self.global_state = self.handler.compute_global_state(
            self.received_state, self.local_state)
        self._processes = processes

        if self.r > 0:
            self.pending = sorted(
                self.peer.links(),
                key=lambda ln: self.handler.link_priority(ln.region))
            self._advance()
        else:
            self._fan_out(processes)

    # -- parallel mode (lines 13-17) --------------------------------------

    def _fan_out(self, processes: bool) -> None:
        collected: list[Any] = [self.local_state] if processes else []
        outstanding = 0

        def child_done(states: list[Any]) -> None:
            nonlocal outstanding
            collected.extend(states)
            outstanding -= 1
            if outstanding == 0:
                self._finish(collected)

        for link in self.peer.links():
            sub = link.region.intersect(self.restriction)
            if sub is None:
                continue
            if not self.handler.is_link_relevant(sub, self.global_state):
                continue
            outstanding += 1
            self.ctx.on_forward()
            child = _Invocation(self.sim, self.ctx, self.handler, link.peer,
                                self.global_state, sub, 0,
                                self.initiator_id, child_done)
            self.sim.schedule(1, child.start)
        if outstanding == 0:
            self._finish(collected)

    # -- sequential mode (lines 4-11) --------------------------------------

    def _advance(self) -> None:
        while self.pending:
            link = self.pending.pop(0)
            sub = link.region.intersect(self.restriction)
            if sub is None:
                continue
            if not self.handler.is_link_relevant(sub, self.global_state):
                continue
            self.ctx.on_forward()
            child = _Invocation(self.sim, self.ctx, self.handler, link.peer,
                                self.global_state, sub, self.r - 1,
                                self.initiator_id, self._on_response)
            self.sim.schedule(1, child.start)
            return  # suspended until the response arrives
        self._finish([self.local_state])

    def _on_response(self, states: list[Any]) -> None:
        self.ctx.on_response(len(states))
        self.local_state = self.handler.update_local_state(
            [self.local_state, *states])
        self.global_state = self.handler.compute_global_state(
            self.received_state, self.local_state)
        self._advance()

    # -- completion ----------------------------------------------------------

    def _finish(self, upstream: list[Any]) -> None:
        if self._processes:
            answer = self.handler.compute_local_answer(self.peer.store,
                                                       self.local_state)
            if self.peer.peer_id == self.initiator_id:
                self.ctx.collected_answers.append(answer)
            else:
                self.ctx.on_answer(answer, self.handler.answer_size(answer))
        # responses travel without propagation delay (see module doc)
        self.on_done(upstream)


def event_driven_ripple(
    initiator: PeerLike,
    handler: QueryHandler,
    r: int = 0,
    *,
    restriction: Region,
    strict: bool = True,
) -> QueryResult:
    """Run Algorithm 3 through the discrete-event engine.

    Semantically identical to :func:`repro.core.framework.run_ripple`;
    latency falls out of message timestamps instead of the recursive
    max/sum computation.
    """
    sim = EventSimulator()
    ctx = QueryContext(strict=strict)
    root = _Invocation(sim, ctx, handler, initiator,
                       handler.initial_state(), restriction,
                       min(r, SLOW), initiator.peer_id, lambda states: None)
    sim.schedule(0, root.start)
    latency = sim.run()
    answer = handler.finalize(ctx.collected_answers)
    return QueryResult(answer=answer, stats=ctx.stats(latency))
