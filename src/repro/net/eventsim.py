"""An event-driven, message-level execution of Algorithm 3.

The main simulator (:mod:`repro.core.framework`) evaluates the RIPPLE
templates *recursively* and derives latency analytically (parallel
branches take the max, sequential iterations the sum).  That is fast, but
it bakes the cost model into the traversal.  This module provides an
independent executable semantics: peers are actors exchanging timestamped
messages through a discrete-event queue, each query forward taking one
time unit.  Running the same query both ways and comparing answers,
visited sets, and latencies is a strong cross-validation of the paper's
cost model — `tests/net/test_eventsim.py` does exactly that.

Conventions matching Section 3.2's analysis (and the recursive engine):
query forwards cost 1 hop; state responses and answer deliveries are
accounted as messages but add no propagation delay (Lemma 2 counts only
the forwards; see :mod:`repro.net.context`).

Fault tolerance: constructing the simulator with a
:class:`~repro.net.faults.FaultPlan` switches every forward to a
*supervised attempt* (:class:`_Attempt`): the plan is consulted on every
delivery (drops, crash windows, jitter), lost forwards are detected by
acknowledgement timeouts and retried with exponential backoff, lost
responses are recovered by a liveness watchdog that asks the remote peer
to retransmit, dead link targets are routed around through alternate live
coordinators (:func:`~repro.net.routing.route_around`), and regions that
remain unreachable are abandoned with their volume accounted so the query
terminates with an explicit completeness bound.  With a zero-fault plan
the supervised execution reproduces the plain one exactly.  The entry
point is :func:`repro.net.faults.resilient_ripple`.

Both the plain and the supervised paths invoke the query handlers, which
back their per-peer reductions with the
:class:`~repro.common.store.LocalStore` computation cache — so a retried
or re-routed forward that re-processes a peer reuses the already-computed
local skyline / score index instead of reducing the array again.

Concurrency (see :mod:`repro.net.scheduler` and ``docs/LOAD.md``): the
simulator multiplexes many :class:`~repro.net.context.QueryContext`\\ s
over one event queue.  Every scheduled event may carry the context it
works for; the run loop attributes executed events to their query
(per-query event budgets), drops events of cancelled queries (deadline
enforcement without poisoning shared queues), and — when a per-peer
``service_time`` is configured — funnels message handling through
per-peer FIFO service queues so queueing delay at hot peers becomes part
of the latency model.  With the default ``service_time = 0`` and a single
context the engine is bit-identical to the historical single-query
behaviour.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Hashable

from ..core.framework import Link, PeerLike, SLOW, physical_id
from ..core.handler import QueryHandler
from ..core.regions import Region, region_volume
from ..obs.trace import TraceSink, state_size
from .context import QueryContext, QueryResult, QueryStats
from .routing import route_around

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids an import cycle)
    from ..overlays.replication import ReplicaDirectory
    from .detector import FailureDetector
    from .faults import FaultPlan

__all__ = ["EventSimulator", "SimulationBudgetExceeded",
           "event_driven_ripple", "DEFAULT_MAX_EVENTS"]

#: Default event budget: far above any legitimate query (the largest
#: benchmark networks execute a few hundred thousand events) but low
#: enough that a fault-induced retry storm or a scheduling bug fails
#: fast instead of spinning forever.
DEFAULT_MAX_EVENTS = 5_000_000


class SimulationBudgetExceeded(RuntimeError):
    """The simulator executed more events than its budget allows.

    A loud safety net against retry storms and self-rescheduling bugs.
    Carries the budget (``cap``), how many events actually executed
    (``executed``), and — when the simulator had a
    :class:`~repro.net.context.QueryContext` attached — the partial
    :class:`~repro.net.context.QueryStats` at the moment the budget blew,
    so callers can report how far the degraded query got instead of
    losing all observability.  Subclasses ``RuntimeError`` for backward
    compatibility with pre-existing ``except RuntimeError`` handlers.

    Budgets are per query where possible: a context with ``max_events``
    set carries its own cap, and the exception then also names the
    offending query (``query_id``) so a concurrent scheduler can shed
    exactly the runaway instead of killing its co-scheduled tenants.
    """

    def __init__(self, message: str, *, cap: int, executed: int,
                 stats: "QueryStats | None" = None,
                 query_id: Hashable | None = None) -> None:
        super().__init__(message)
        self.cap = cap
        self.executed = executed
        self.stats = stats
        self.query_id = query_id


class EventSimulator:
    """A minimal discrete-event engine: (time, fifo) ordered callbacks.

    ``faults`` (a :class:`~repro.net.faults.FaultPlan`) enables the
    supervised delivery machinery; ``max_events`` caps how many events
    :meth:`run` may execute before raising ``RuntimeError``.

    ``service_time`` models per-peer processing capacity: each message a
    peer handles occupies it for that many time units, and concurrent
    arrivals wait in the peer's FIFO service queue (:meth:`service`).
    The default ``0`` keeps the classic infinite-capacity model and is
    bit-identical to the pre-multiplexing engine.
    """

    def __init__(self, faults: "FaultPlan | None" = None, *,
                 max_events: int | None = DEFAULT_MAX_EVENTS,
                 service_time: int = 0) -> None:
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        self._queue: list[tuple[int, int, Callable[[], None],
                                QueryContext | None]] = []
        self._counter = itertools.count()
        self.now = 0
        self.faults = faults
        self.max_events = max_events
        self.service_time = service_time
        #: Per-peer FIFO service reservations: peer id -> time its queue
        #: drains.  Empty (and never consulted) when ``service_time == 0``.
        self._busy_until: dict[Hashable, int] = {}
        #: Per-peer cumulative busy time; ``busy / elapsed`` is the peer's
        #: saturation, surfaced by the load benchmarks and the obs layer.
        self.busy_time: dict[Hashable, int] = {}
        #: Concurrent-scheduler hook: called as ``on_overrun(ctx, reason)``
        #: when a context blows its deadline or per-query event budget.
        #: Without a hook a blown per-query budget raises
        #: :class:`SimulationBudgetExceeded` like the global cap does.
        self.on_overrun: Callable[[QueryContext, str], None] | None = None
        self._messages = itertools.count()
        self._request_ids = itertools.count()
        #: Supervised-request registry: request id -> :class:`_RequestEntry`.
        #: Models the remote peer remembering a request so duplicate
        #: forwards are suppressed and completed results can be replayed.
        self.requests: dict[int, _RequestEntry] = {}
        #: Self-healing attachments (set by resilient_ripple when a
        #: ReplicaDirectory is supplied): the promotion source and the
        #: failure detector steering proactive link patching.
        self.replicas: "ReplicaDirectory | None" = None
        self.detector: "FailureDetector | None" = None
        #: The running query's context; lets a blown event budget surface
        #: partial stats through SimulationBudgetExceeded.
        self.context: QueryContext | None = None

    def new_message_id(self) -> int:
        """Sequence number identifying one message delivery (fault draws)."""
        return next(self._messages)

    def new_request_id(self) -> int:
        return next(self._request_ids)

    def schedule(self, delay: int, action: Callable[[], None],
                 ctx: QueryContext | None = None) -> None:
        """Enqueue ``action`` after ``delay`` time units.

        ``ctx`` attributes the event to one query: the run loop charges
        it against that query's event budget and silently drops it if the
        query has been cancelled.  Unattributed events fall back to the
        simulator-wide :attr:`context` (the single-query convention).
        """
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue,
                       (self.now + delay, next(self._counter), action, ctx))

    def deliver(self, peer_id: Hashable, delay: int,
                action: Callable[[], None],
                ctx: QueryContext | None = None) -> None:
        """Schedule a message arrival at ``peer_id``, then serve it.

        With ``service_time == 0`` this is exactly :meth:`schedule`; with
        a service rate configured, the arrival joins the target peer's
        FIFO service queue (see :meth:`service`), so congestion at hot
        peers stretches the query's critical path.
        """
        if self.service_time <= 0:
            self.schedule(delay, action, ctx)
            return
        self.schedule(delay, lambda: self.service(peer_id, action, ctx),
                      ctx)

    def service(self, peer_id: Hashable, action: Callable[[], None],
                ctx: QueryContext | None = None) -> None:
        """Run ``action`` through ``peer_id``'s FIFO service queue.

        The peer serves one message per ``service_time`` time units;
        an arrival finding the peer busy waits until the reservations
        ahead of it drain (the wait is charged to the owning query's
        ``queue_delay``).  A zero service time serves synchronously —
        the infinite-capacity model the single-query engines assume.
        """
        if self.service_time <= 0:
            action()
            return
        start = max(self.now, self._busy_until.get(peer_id, 0))
        wait = start - self.now
        self._busy_until[peer_id] = start + self.service_time
        self.busy_time[peer_id] = (self.busy_time.get(peer_id, 0)
                                   + self.service_time)
        if wait <= 0:
            action()
            return
        if ctx is not None:
            ctx.on_queue_wait(wait)
        self.schedule(wait, action, ctx)

    def _overrun(self, owner: QueryContext, reason: str) -> None:
        """Cancel ``owner`` and notify the scheduler hook, if any."""
        owner.cancel(reason)
        if self.on_overrun is not None:
            self.on_overrun(owner, reason)

    def run(self, max_events: int | None = None) -> int:
        """Drain the queue; returns the time of the last event.

        Raises :class:`SimulationBudgetExceeded` (a ``RuntimeError``) when
        more than ``max_events`` (default: the constructor's cap) events
        execute — a loud safety net against retry storms and
        self-rescheduling bugs.  When a context is attached the exception
        carries the partial stats collected so far.

        Per-query enforcement: each executed event is attributed to the
        context it was scheduled for (falling back to :attr:`context`).
        Events of a cancelled query are dropped unexecuted; an event past
        its query's ``deadline`` cancels the query instead of running;
        and a query whose own ``max_events`` budget blows is cancelled
        through :attr:`on_overrun` when a scheduler is listening, else
        raises with the per-query cap and ``query_id``.
        """
        cap = self.max_events if max_events is None else max_events
        last = 0
        executed = 0
        while self._queue:
            time, _, action, ctx = heapq.heappop(self._queue)
            owner = ctx if ctx is not None else self.context
            if owner is not None and owner.cancelled:
                continue  # in-flight work of a dead query: drop it
            executed += 1
            if cap is not None and executed > cap:
                stats = None if self.context is None \
                    else self.context.stats(self.now)
                raise SimulationBudgetExceeded(
                    f"EventSimulator exceeded its event budget of {cap}; "
                    "likely a retry storm or a scheduling bug "
                    "(raise max_events if the workload is legitimate)",
                    cap=cap, executed=executed, stats=stats)
            if owner is not None:
                if owner.deadline is not None and time > owner.deadline:
                    self._overrun(owner, "deadline")
                    continue
                owner.events_executed += 1
                qcap = owner.max_events
                if qcap is not None and owner.events_executed > qcap:
                    if self.on_overrun is not None:
                        self._overrun(owner, "budget")
                        continue
                    owner.cancel("budget")
                    raise SimulationBudgetExceeded(
                        f"query {owner.query_id!r} exceeded its per-query "
                        f"event budget of {qcap}; likely a retry storm "
                        "(raise the query's max_events if legitimate)",
                        cap=qcap, executed=owner.events_executed,
                        stats=owner.stats(self.now),
                        query_id=owner.query_id)
            self.now = last = time
            action()
        return last


@dataclass
class _RequestEntry:
    """A remote peer's memory of one supervised request.

    ``incarnation`` is the target's crash count when it accepted the
    request — a later mismatch means the serving execution died with the
    peer (amnesia) and the request must start over.  ``result`` caches
    the response once the remote subtree completes, so duplicate and
    retransmit-requesting forwards replay it instead of re-processing.
    """

    incarnation: int
    result: list[Any] | None = None


@dataclass
class _Invocation:
    """One peer's in-flight execution of Algorithm 3 (sequential mode).

    Mirrors the loop of lines 4-11: examine prioritized links one at a
    time, suspend on each forward, resume in :meth:`on_response`.  Under a
    fault plan, forwards are wrapped in supervised :class:`_Attempt`
    objects and the invocation checks its own peer's liveness before
    resuming (crash-stop semantics: a crashed peer loses in-flight state).
    """

    sim: EventSimulator
    ctx: QueryContext
    handler: QueryHandler
    peer: PeerLike
    received_state: Any
    restriction: Region
    r: int
    initiator_id: Hashable
    on_done: Callable[[list[Any]], None]
    local_state: Any = None
    global_state: Any = None
    pending: list[Link] = field(default_factory=list)
    #: Cursor into :attr:`pending`; advancing an index is O(1) per link
    #: where popping the list head would shift the whole tail.
    pending_index: int = 0
    #: How many times this subtree's lineage was already re-routed around
    #: a failure; bounds recovery recursion (see FaultPlan.max_reroute_depth).
    route_depth: int = 0
    #: Crash-stop bookkeeping, initialized by :meth:`start` under a fault
    #: plan: the executing machine's incarnation at start, whether the
    #: peer has been observed dead, whether its local answer shipped, and
    #: whether this invocation processed the peer's data.
    _birth: int = 0
    _gone: bool = False
    _answered: bool = False
    _processes: bool = False
    #: Trace causality (see :mod:`repro.obs.trace`): the span this
    #: invocation nests under, and its own ``process`` span id.
    parent_span: int | None = None
    span: int = 0

    def start(self) -> None:
        faults = self.sim.faults
        if faults is not None:
            self.ctx.note_time(self.sim.now)
            # Liveness and incarnation track the *machine* doing the work:
            # a promoted replica holder executes under the dead owner's
            # logical peer_id but crashes (or not) as itself.
            self._birth = faults.incarnation(physical_id(self.peer),
                                             self.sim.now)
            self._gone = False
            self._answered = False
        processes = self.ctx.begin_processing(self.peer.peer_id)
        replica_read = (processes and faults is not None
                        and physical_id(self.peer) != self.peer.peer_id)
        if replica_read:
            self.ctx.on_replica_read()
        if processes:
            self.local_state = self.handler.compute_local_state(
                self.peer.store, self.received_state)
        else:
            self.local_state = self.handler.neutral_local_state()
        self.global_state = self.handler.compute_global_state(
            self.received_state, self.local_state)
        self._processes = processes
        sink = self.ctx.sink
        if sink.enabled:
            self.span = sink.begin_span(
                "process", self.peer.peer_id, self.sim.now,
                parent=self.parent_span, region=repr(self.restriction),
                r=self.r, processes=processes,
                state_size=state_size(self.local_state))
            if replica_read:
                sink.event("replica-read", self.sim.now, span=self.span,
                           physical=physical_id(self.peer))

        if self.r > 0:
            self.pending = sorted(
                self.peer.links(),
                key=lambda ln: self.handler.link_priority(ln.region))
            self._advance()
        else:
            self._fan_out(processes)

    # -- crash-stop bookkeeping --------------------------------------------

    def _dead(self) -> bool:
        """Whether this peer crashed since the invocation started.

        A crashed peer forgets its in-flight state (amnesia); if its local
        answer never shipped, the peer is un-marked from the processed set
        so a later retry may re-process its data.
        """
        faults = self.sim.faults
        if faults is None:
            return False
        if self._gone:
            return True
        now = self.sim.now
        pid = physical_id(self.peer)
        if (not faults.alive(pid, now)
                or faults.incarnation(pid, now) != self._birth):
            self._gone = True
            if self._processes and not self._answered:
                self.ctx.processed.discard(self.peer.peer_id)
            return True
        return False

    # -- parallel mode (lines 13-17) --------------------------------------

    def _fan_out(self, processes: bool) -> None:
        collected: list[Any] = [self.local_state] if processes else []
        outstanding = 0

        def settle() -> None:
            nonlocal outstanding
            outstanding -= 1
            if outstanding == 0:
                self._finish(collected)

        def child_done(states: list[Any]) -> None:
            collected.extend(states)
            settle()

        for link in self.peer.links():
            sub = link.region.intersect(self.restriction)
            if sub is None:
                continue
            if not self.handler.is_link_relevant(sub, self.global_state):
                continue
            outstanding += 1
            if self.sim.faults is None:
                self.ctx.on_forward()
                if self.ctx.sink.enabled:
                    self.ctx.sink.event("forward", self.sim.now,
                                        span=self.span,
                                        target=link.peer.peer_id)
                child = _Invocation(self.sim, self.ctx, self.handler,
                                    link.peer, self.global_state, sub, 0,
                                    self.initiator_id, child_done,
                                    parent_span=self.span or None)
                self.sim.deliver(physical_id(link.peer), 1, child.start,
                                 self.ctx)
            else:
                _Attempt(self, link.peer, sub, 0,
                         on_states=child_done, on_give_up=settle).send()
        if outstanding == 0:
            self._finish(collected)

    # -- sequential mode (lines 4-11) --------------------------------------

    def _advance(self) -> None:
        while self.pending_index < len(self.pending):
            link = self.pending[self.pending_index]
            self.pending_index += 1
            sub = link.region.intersect(self.restriction)
            if sub is None:
                continue
            if not self.handler.is_link_relevant(sub, self.global_state):
                continue
            if self.sim.faults is None:
                self.ctx.on_forward()
                if self.ctx.sink.enabled:
                    self.ctx.sink.event("forward", self.sim.now,
                                        span=self.span,
                                        target=link.peer.peer_id)
                child = _Invocation(self.sim, self.ctx, self.handler,
                                    link.peer, self.global_state, sub,
                                    self.r - 1, self.initiator_id,
                                    self._on_response,
                                    parent_span=self.span or None)
                self.sim.deliver(physical_id(link.peer), 1, child.start,
                                 self.ctx)
            else:
                _Attempt(self, link.peer, sub, self.r - 1,
                         on_states=self._on_response,
                         on_give_up=self._resume_after_loss).send()
            return  # suspended until the response arrives
        self._finish([self.local_state])

    def _on_response(self, states: list[Any]) -> None:
        if self.sim.faults is not None and self._dead():
            return
        self.ctx.on_response(len(states))
        if self.ctx.sink.enabled:
            self.ctx.sink.event("response", self.sim.now, span=self.span,
                                count=len(states))
        self.local_state = self.handler.update_local_state(
            [self.local_state, *states])
        self.global_state = self.handler.compute_global_state(
            self.received_state, self.local_state)
        self._advance()

    def _resume_after_loss(self) -> None:
        """Continue past a link whose region was abandoned as unreachable."""
        if self._dead():
            return
        self._advance()

    # -- completion ----------------------------------------------------------

    def _finish(self, upstream: list[Any]) -> None:
        sink = self.ctx.sink
        if self._processes:
            answer = self.handler.compute_local_answer(self.peer.store,
                                                       self.local_state)
            if self.peer.peer_id == self.initiator_id:
                self.ctx.collected_answers.append(answer)
            else:
                size = self.handler.answer_size(answer)
                self.ctx.on_answer(answer, size)
                if sink.enabled and size > 0:
                    sink.event("answer", self.sim.now, span=self.span,
                               size=size)
            if self.sim.faults is not None:
                self._answered = True
        if sink.enabled:
            sink.end_span(self.span, self.sim.now,
                          state_size=state_size(self.local_state))
        # responses travel without propagation delay (see module doc)
        self.on_done(upstream)


class _Attempt:
    """One fault-supervised forward of a restriction region to a target.

    Lifecycle::

        send -> deliver (plan consulted: drop? target dead? jitter)
             -> ack | ack-timeout (exponential backoff, bounded retries)
             -> watchdog while the remote subtree runs
                  (detects crash/amnesia; asks for retransmits of lost
                   responses; doubling period so it never throttles)
             -> response accepted | failure
        failure -> re-route the region through an alternate live
                   coordinator (route_around), bounded in depth
                -> promote a live replica of the target and re-issue
                   the region against it (see repro.overlays.replication)
                -> abandon: account the region's volume as unreachable

    When a ReplicaDirectory and a FailureDetector are attached to the
    simulator, an attempt whose target the detector has already declared
    dead is *proactively* redirected to the promoted stand-in before the
    first forward (the patched-link fast path), and ack timeouts against
    detector-confirmed-dead targets skip the pointless retry ladder.

    Duplicate forwards are suppressed through the simulator's request
    registry; a completed remote execution replays its cached response
    instead of re-processing (at-least-once delivery, exactly-once
    processing per peer incarnation).
    """

    __slots__ = ("parent", "sim", "ctx", "faults", "target", "sub", "r",
                 "route_depth", "request_id", "tries", "watchdogs", "gen",
                 "acked", "done", "on_states", "on_give_up", "extra_delay",
                 "tried", "span")

    def __init__(self, parent: _Invocation, target: PeerLike, sub: Region,
                 r: int, on_states: Callable[[list[Any]], None],
                 on_give_up: Callable[[], None],
                 route_depth: int | None = None, extra_delay: int = 0,
                 tried: frozenset[Hashable] = frozenset()) -> None:
        faults = parent.sim.faults
        assert faults is not None, "attempts exist only under a fault plan"
        self.parent = parent
        self.sim = parent.sim
        self.ctx = parent.ctx
        self.faults: "FaultPlan" = faults
        self.target = target
        self.sub = sub
        self.r = r
        self.route_depth = parent.route_depth if route_depth is None \
            else route_depth
        self.request_id = self.sim.new_request_id()
        self.tries = 0
        self.watchdogs = 0
        self.gen = 0  # bumped to invalidate stale timers
        self.acked = False
        self.done = False
        self.on_states = on_states
        self.on_give_up = on_give_up
        #: Relay hops a re-routed forward spends reaching its coordinator.
        self.extra_delay = extra_delay
        #: Physical ids of replica holders this region was already issued
        #: against; bounds replica recovery (the holder pool only shrinks).
        self.tried = tried
        #: Trace span covering this attempt's whole supervised lifetime.
        self.span = 0

    # -- forward + ack ----------------------------------------------------

    def send(self) -> None:
        sink = self.ctx.sink
        if self.tries == 0:
            if sink.enabled:
                self.span = sink.begin_span(
                    "attempt", self.target.peer_id, self.sim.now,
                    parent=self.parent.span or None, region=repr(self.sub),
                    r=self.r, route_depth=self.route_depth)
            self._maybe_redirect()
        self.tries += 1
        if self.tries > 1:
            self.ctx.on_retry()
            if sink.enabled:
                sink.event("retry", self.sim.now, span=self.span,
                           attempt=self.tries)
        self.ctx.on_forward()
        if sink.enabled:
            sink.event("forward", self.sim.now, span=self.span,
                       target=self.target.peer_id)
        self.acked = False
        self.gen += 1
        gen = self.gen
        message = self.sim.new_message_id()
        delay = self.extra_delay + self.faults.forward_delay(message)
        self.sim.schedule(delay, lambda: self._deliver(message), self.ctx)
        # The deadline rides on top of the actual delay so jitter can
        # never fire a spurious timeout; backoff doubles per attempt.
        deadline = delay + (self.faults.ack_timeout << (self.tries - 1))
        self.sim.schedule(deadline, lambda: self._ack_timeout(gen), self.ctx)

    def _maybe_redirect(self) -> None:
        """Patched-link fast path: the failure detector already declared
        the target dead, so forward straight to its promoted stand-in."""
        detector = self.sim.detector
        replicas = self.sim.replicas
        if detector is None or replicas is None:
            return
        if not detector.is_dead(physical_id(self.target)):
            return
        now = self.sim.now
        promoted = replicas.promote(
            self.target.peer_id,
            lambda pid: self.faults.alive(pid, now),
            exclude=self.tried)
        if promoted is not None:
            self.target = promoted
            self.tried = self.tried | {promoted.physical_id}
            self.ctx.on_region_recovered()
            if self.ctx.sink.enabled:
                self.ctx.sink.event("region-recovered", self.sim.now,
                                    span=self.span, proactive=True,
                                    stand_in=promoted.physical_id)

    def _deliver(self, message: int) -> None:
        if self.done:
            return  # stale retransmission of an already-settled request
        faults = self.faults
        sink = self.ctx.sink
        if faults.drops(message):
            self.ctx.on_drop()
            if sink.enabled:
                sink.event("drop", self.sim.now, span=self.span,
                           what="forward")
            return
        now = self.sim.now
        if not faults.alive(physical_id(self.target), now):
            self.ctx.on_drop()  # swallowed by a dead peer
            if sink.enabled:
                sink.event("drop", self.sim.now, span=self.span,
                           what="dead-target")
            return
        self._send_ack()
        incarnation = faults.incarnation(physical_id(self.target), now)
        entry = self.sim.requests.get(self.request_id)
        if entry is not None and entry.incarnation == incarnation:
            if entry.result is not None:
                self._respond(entry.result)  # duplicate, already completed
            return  # in progress: the running invocation will respond
        self.sim.requests[self.request_id] = _RequestEntry(incarnation)
        child = _Invocation(self.sim, self.ctx, self.parent.handler,
                            self.target, self.parent.global_state, self.sub,
                            self.r, self.parent.initiator_id,
                            self._child_finished,
                            route_depth=self.route_depth,
                            parent_span=self.span or None)
        self.sim.service(physical_id(self.target), child.start, self.ctx)

    def _send_ack(self) -> None:
        self.ctx.on_ack()
        sink = self.ctx.sink
        if sink.enabled:
            sink.event("ack", self.sim.now, span=self.span)
        if self.faults.drops(self.sim.new_message_id()):
            self.ctx.on_drop()  # lost ack: the sender will retry, we dedup
            if sink.enabled:
                sink.event("drop", self.sim.now, span=self.span, what="ack")
            return
        if self.done or self.acked or self.parent._dead():
            return
        self.acked = True
        self._arm_watchdog()

    def _ack_timeout(self, gen: int) -> None:
        if self.done or self.acked or gen != self.gen:
            return
        if self.parent._dead():
            return
        self.ctx.on_timeout()
        detector = self.sim.detector
        confirmed_dead = (detector is not None
                          and detector.is_dead(physical_id(self.target)))
        if self.ctx.sink.enabled:
            self.ctx.sink.event("timeout", self.sim.now, span=self.span,
                                what="ack", detector_dead=confirmed_dead)
        if confirmed_dead:
            # Confirmed dead: retrying the same target is pointless.
            self._fail()
        elif self.tries <= self.faults.max_retries:
            self.send()
        else:
            self._fail()

    # -- liveness watchdog ------------------------------------------------

    def _arm_watchdog(self) -> None:
        gen = self.gen
        period = self.faults.watchdog_base << min(self.watchdogs, 16)
        self.sim.schedule(period, lambda: self._watchdog(gen), self.ctx)

    def _watchdog(self, gen: int) -> None:
        if self.done or gen != self.gen:
            return
        if self.parent._dead():
            return
        self.watchdogs += 1
        if self.watchdogs > self.faults.max_watchdogs:
            self.ctx.on_timeout()
            if self.ctx.sink.enabled:
                self.ctx.sink.event("timeout", self.sim.now, span=self.span,
                                    what="watchdog-exhausted")
            self._fail()
            return
        faults = self.faults
        now = self.sim.now
        pid = physical_id(self.target)
        entry = self.sim.requests.get(self.request_id)
        if (entry is None or not faults.alive(pid, now)
                or entry.incarnation != faults.incarnation(pid, now)):
            # The remote peer crashed (and possibly recovered with
            # amnesia): the in-flight execution is gone, start over.
            self.ctx.on_timeout()
            detector = self.sim.detector
            confirmed_dead = detector is not None and detector.is_dead(pid)
            if self.ctx.sink.enabled:
                self.ctx.sink.event("timeout", self.sim.now, span=self.span,
                                    what="remote-crash",
                                    detector_dead=confirmed_dead)
            if confirmed_dead:
                self._fail()
            elif self.tries <= faults.max_retries:
                self.send()
            else:
                self._fail()
            return
        if entry.result is not None:
            self._respond(entry.result)  # response was lost: retransmit
            if self.done:
                return
        self._arm_watchdog()

    # -- response ---------------------------------------------------------

    def _child_finished(self, states: list[Any]) -> None:
        entry = self.sim.requests.get(self.request_id)
        if entry is not None:
            entry.result = list(states)
        self._respond(states)

    def _respond(self, states: list[Any]) -> None:
        if self.done:
            return
        if self.faults.drops(self.sim.new_message_id()):
            self.ctx.on_drop()  # a watchdog will ask again
            if self.ctx.sink.enabled:
                self.ctx.sink.event("drop", self.sim.now, span=self.span,
                                    what="response")
            return
        if self.parent._dead():
            return
        self.done = True
        self.gen += 1
        self.ctx.note_time(self.sim.now)
        if self.ctx.sink.enabled:
            self.ctx.sink.end_span(self.span, self.sim.now, status="ok",
                                   tries=self.tries)
        self.on_states(list(states))

    # -- failure ----------------------------------------------------------

    def _fail(self) -> None:
        """Retries exhausted: route around the target, else promote a
        replica of its region, else abandon."""
        faults = self.faults
        if self.route_depth < faults.max_reroute_depth:
            now = self.sim.now
            alternate, hops = route_around(
                self.parent.peer, self.sub,
                lambda pid: faults.alive(pid, now),
                exclude=(self.target.peer_id,))
            if alternate is not None:
                self.ctx.on_reroute()
                self.done = True
                self.gen += 1
                if self.ctx.sink.enabled:
                    self.ctx.sink.event("reroute", self.sim.now,
                                        span=self.span,
                                        via=alternate.peer_id,
                                        relay_hops=max(0, hops - 1))
                    self.ctx.sink.end_span(self.span, self.sim.now,
                                           status="rerouted",
                                           tries=self.tries)
                relay = _Attempt(self.parent, alternate, self.sub, self.r,
                                 self.on_states, self.on_give_up,
                                 route_depth=self.route_depth + 1,
                                 extra_delay=max(0, hops - 1),
                                 tried=self.tried)
                relay.send()
                return
        if self._recover_via_replica():
            return
        self._give_up()

    def _recover_via_replica(self) -> bool:
        """Re-issue the stranded region against a live replica holder.

        The promoted stand-in impersonates the dead target (same logical
        peer_id, mirrored store, same link table), so the region is served
        exactly as the target would have served it.  ``tried`` accumulates
        every holder already consumed by this region's recovery lineage,
        so the promotion pool strictly shrinks and recovery terminates.
        """
        replicas = self.sim.replicas
        if replicas is None:
            return False
        now = self.sim.now
        promoted = replicas.promote(
            self.target.peer_id,
            lambda pid: self.faults.alive(pid, now),
            exclude=self.tried)
        if promoted is None:
            return False
        self.ctx.on_region_recovered()
        self.done = True
        self.gen += 1
        if self.ctx.sink.enabled:
            self.ctx.sink.event("region-recovered", self.sim.now,
                                span=self.span, proactive=False,
                                stand_in=promoted.physical_id)
            self.ctx.sink.end_span(self.span, self.sim.now,
                                   status="recovered-via-replica",
                                   tries=self.tries)
        relay = _Attempt(self.parent, promoted, self.sub, self.r,
                         self.on_states, self.on_give_up,
                         route_depth=self.route_depth,
                         tried=self.tried | {promoted.physical_id})
        relay.send()
        return True

    def _give_up(self) -> None:
        self.done = True
        self.gen += 1
        self.ctx.on_unreachable(region_volume(self.sub))
        self.ctx.note_time(self.sim.now)
        if self.ctx.sink.enabled:
            self.ctx.sink.event("unreachable", self.sim.now, span=self.span,
                                volume=region_volume(self.sub))
            self.ctx.sink.end_span(self.span, self.sim.now,
                                   status="abandoned", tries=self.tries)
        self.on_give_up()


def event_driven_ripple(
    initiator: PeerLike,
    handler: QueryHandler,
    r: int = 0,
    *,
    restriction: Region,
    strict: bool = True,
    sink: TraceSink | None = None,
) -> QueryResult:
    """Run Algorithm 3 through the discrete-event engine.

    Semantically identical to :func:`repro.core.framework.run_ripple`;
    latency falls out of message timestamps instead of the recursive
    max/sum computation.  For execution under injected faults see
    :func:`repro.net.faults.resilient_ripple`.  ``sink`` attaches a trace
    recorder (see :mod:`repro.obs.trace`).
    """
    sim = EventSimulator()
    ctx = QueryContext(strict=strict)
    if sink is not None:
        ctx.sink = sink
    sim.context = ctx
    root = _Invocation(sim, ctx, handler, initiator,
                       handler.initial_state(), restriction,
                       min(r, SLOW), initiator.peer_id, lambda states: None)
    sim.schedule(0, root.start, ctx)
    latency = sim.run()
    answer = handler.finalize(ctx.collected_answers)
    return QueryResult(answer=answer, stats=ctx.stats(latency))
