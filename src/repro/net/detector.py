"""A heartbeat failure detector driving overlay self-healing.

Structured overlays repair themselves *proactively*: peers probe their
neighbors on a schedule, declare unresponsive ones dead, and patch links
before queries stumble into the hole (Chord's stabilization, CAN's
zone-takeover timers).  This module supplies that component for the
fault-injected simulations: :class:`FailureDetector` runs periodic
heartbeat sweeps inside the :class:`~repro.net.eventsim.EventSimulator`,
consults the :class:`~repro.net.faults.FaultPlan` for ground truth (and
for probe loss, so a lossy network can produce false suspicions), and
walks each monitored peer through the classic ALIVE → SUSPECT → DEAD
state machine.

The detector is *eventually perfect* in the usual sense: a probe that
finds the peer up (and no probe loss) resets it to ALIVE immediately, so
suspicions are always eventually corrected.  Incarnation awareness makes
recovery visible: a peer that crashed and came back is reported through
``on_alive`` even if the detector never saw it down, because its
incarnation number moved.

Determinism: probe-loss draws consume simulator message ids, which would
perturb the drop/jitter sequence of the query traffic sharing the
simulator.  With ``drop_prob == 0`` the plan answers every draw False
without consuming entropy, and the detector skips the draw entirely — so
runs that differ only in whether a detector is attached stay bit-identical
whenever messages are reliable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Hashable, Iterable

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids an import cycle)
    from .eventsim import EventSimulator
    from .faults import FaultPlan

__all__ = ["ALIVE", "SUSPECT", "DEAD", "FailureDetector"]

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


class FailureDetector:
    """Periodic heartbeat sweeps over a set of monitored peers.

    Every ``period`` time units the detector probes each monitored peer.
    A failed probe (peer down, or probe lost on a lossy network) bumps the
    peer's miss counter: ``suspect_after`` consecutive misses mark it
    SUSPECT, ``dead_after`` mark it DEAD and fire ``on_dead`` (the repair
    hook — e.g. :meth:`~repro.overlays.replication.ReplicaDirectory.repair`).
    A successful probe resets the peer to ALIVE and fires ``on_alive`` if
    it was previously declared dead or returned with a new incarnation
    (the un-repair hook).

    ``plan.protected`` peers are never probed (they cannot fail).  The
    detector reschedules itself until :meth:`stop` is called, so the
    owning query must stop it on completion or the event queue never
    drains.
    """

    __slots__ = ("sim", "plan", "peer_ids", "period", "suspect_after",
                 "dead_after", "on_dead", "on_alive", "probes",
                 "_misses", "_status", "_incarnations", "_stopped")

    def __init__(
        self,
        sim: "EventSimulator",
        plan: "FaultPlan",
        peer_ids: Iterable[Hashable],
        *,
        period: int | None = None,
        suspect_after: int | None = None,
        dead_after: int | None = None,
        on_dead: Callable[[Hashable], None] | None = None,
        on_alive: Callable[[Hashable], None] | None = None,
    ) -> None:
        self.sim = sim
        self.plan = plan
        self.peer_ids = [pid for pid in peer_ids if pid not in plan.protected]
        self.period = plan.heartbeat_period if period is None else period
        self.suspect_after = plan.suspect_after if suspect_after is None \
            else suspect_after
        self.dead_after = plan.dead_after if dead_after is None else dead_after
        if self.period <= 0:
            raise ValueError("heartbeat period must be positive")
        if not 0 < self.suspect_after <= self.dead_after:
            raise ValueError("need 0 < suspect_after <= dead_after")
        self.on_dead = on_dead
        self.on_alive = on_alive
        #: Total heartbeat probes issued (observability).
        self.probes = 0
        self._misses: dict[Hashable, int] = {pid: 0 for pid in self.peer_ids}
        self._status: dict[Hashable, str] = {pid: ALIVE
                                             for pid in self.peer_ids}
        self._incarnations: dict[Hashable, int] = {
            pid: 0 for pid in self.peer_ids}
        self._stopped = True

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Schedule the first sweep one period from now."""
        if not self._stopped:
            return
        self._stopped = False
        self.sim.schedule(self.period, self._sweep)

    def stop(self) -> None:
        """Cease probing; the pending sweep becomes a no-op."""
        self._stopped = True

    # -- probing -----------------------------------------------------------

    def _probe_lost(self) -> bool:
        # Skip the draw outright on reliable networks: consuming message
        # ids would shift the fault draws of the query traffic (see the
        # module docstring on determinism).
        if self.plan.drop_prob <= 0.0:
            return False
        return self.plan.drops(self.sim.new_message_id())

    def _sweep(self) -> None:
        if self._stopped:
            return
        now = self.sim.now
        plan = self.plan
        for pid in self.peer_ids:
            self.probes += 1
            up = plan.alive(pid, now) and not self._probe_lost()
            if up:
                incarnation = plan.incarnation(pid, now)
                was = self._status[pid]
                reborn = incarnation != self._incarnations[pid]
                self._misses[pid] = 0
                self._status[pid] = ALIVE
                self._incarnations[pid] = incarnation
                if (was == DEAD or (reborn and was != ALIVE)) \
                        and self.on_alive is not None:
                    self.on_alive(pid)
            else:
                misses = self._misses[pid] + 1
                self._misses[pid] = misses
                if misses >= self.dead_after:
                    if self._status[pid] != DEAD:
                        self._status[pid] = DEAD
                        if self.on_dead is not None:
                            self.on_dead(pid)
                elif misses >= self.suspect_after:
                    if self._status[pid] == ALIVE:
                        self._status[pid] = SUSPECT
        self.sim.schedule(self.period, self._sweep)

    # -- queries -----------------------------------------------------------

    def status(self, peer_id: Hashable) -> str:
        """ALIVE / SUSPECT / DEAD; unmonitored peers read as ALIVE."""
        return self._status.get(peer_id, ALIVE)

    def is_dead(self, peer_id: Hashable) -> bool:
        return self._status.get(peer_id) == DEAD

    def __repr__(self) -> str:
        dead = sum(1 for s in self._status.values() if s == DEAD)
        return (f"FailureDetector(monitored={len(self.peer_ids)}, "
                f"period={self.period}, dead={dead}, probes={self.probes})")
