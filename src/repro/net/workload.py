"""Open-loop workload generation for the concurrent query engine.

Serving-stack behaviour under load only shows up under *open-loop*
traffic: arrivals keep coming at their own rate whether or not the
system has kept up, so queues actually build (a closed loop would
self-throttle and hide the overload).  This module drives a
:class:`~repro.net.scheduler.QueryEngine` with a seeded Poisson arrival
process over the repo's handler/overlay matrix and reduces the outcomes
to the headline serving metrics: exact p50/p99 latency, shed rate,
deadline-miss rate, and completeness of admitted queries.

Everything is derived from one seeded generator in a fixed draw order,
so a workload is a pure function of ``(overlay, spec, engine config)``:
two runs produce identical per-query answers, stats, and shed decisions
(``tests/net/test_workload.py`` pins this property), which is what makes
``benchmarks/bench_load.py``'s committed baseline a meaningful CI gate.

Latency percentiles are computed *exactly* from the sorted turnaround
times — deliberately not via :class:`~repro.obs.metrics.Histogram`,
whose quantiles round up to bucket edges (and to infinity past the last
bound), which would break the "p99 finite and monotone in load" gate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Protocol, Sequence

import numpy as np

from ..common.hashing import mix
from ..common.scoring import LinearScore
from ..core.framework import PeerLike
from ..core.regions import Region
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceSink
from ..queries.skyline import SkylineHandler
from ..queries.topk import TopKHandler
from .scheduler import (QueryBudgetExceeded, QueryCompleted,
                        QueryDeadlineExceeded, QueryEngine, QueryOutcome,
                        QueryRejected)

__all__ = ["WorkloadSpec", "WorkloadReport", "poisson_arrivals",
           "run_workload"]

_ARRIVAL_SALT = 0x10AD
_QUERY_SALT = 0x0A5B


class QueryableOverlay(Protocol):
    """An overlay the workload driver can target: enumerable peers plus
    a restrictable query domain (every repo overlay satisfies this)."""

    def peers(self) -> Sequence[PeerLike]:  # pragma: no cover - protocol
        ...

    def domain(self) -> Region:  # pragma: no cover - protocol
        ...

#: Histogram bounds for the per-peer saturation metric (busy fraction).
DEFAULT_SATURATION_BUCKETS = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)


@dataclass(frozen=True)
class WorkloadSpec:
    """A seeded description of one open-loop query mix.

    ``rate`` is the mean arrival rate in queries per simulation time
    unit; inter-arrival gaps are exponential, so the arrival process is
    Poisson.  ``topk_fraction`` splits the mix between top-k queries
    (seeded linear scoring weights) and skylines; ``rs`` is the pool of
    ripple parameters sampled per query.  ``deadline`` / ``max_events``
    become each query's per-query budgets, and ``classes`` assigns
    weighted-fair classes by (name, relative frequency).
    """

    queries: int
    rate: float
    seed: int = 0
    topk_fraction: float = 0.5
    k: int = 4
    rs: tuple[int, ...] = (0, 1)
    deadline: int | None = None
    max_events: int | None = None
    priorities: tuple[int, ...] = (0,)
    classes: tuple[tuple[str, int], ...] = (("default", 1),)
    #: Duplicate-visit mode forwarded to every query; ``None`` keeps the
    #: engine default (strict without faults).  Overlays with
    #: conservative region covers (CAN) need ``False``.
    strict: bool | None = None
    #: Distinct query templates; ``None`` (the default, and the legacy
    #: behaviour) draws a fresh query per arrival.  With a population the
    #: spec pre-draws that many templates and each arrival Zipf-picks one,
    #: so popular queries repeat — the regime a result cache serves.
    population: int | None = None
    #: Zipf exponent of template popularity (population mode only).
    skew: float = 1.1
    #: Attach an :class:`~repro.net.adaptive.AdaptiveFanout` over ``rs``
    #: to the engine, overriding the per-arrival ``r`` draw by load.
    adaptive_r: bool = False

    def __post_init__(self) -> None:
        if self.queries <= 0:
            raise ValueError("queries must be positive")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if not 0.0 <= self.topk_fraction <= 1.0:
            raise ValueError("topk_fraction must be within [0, 1]")
        if not self.rs or not self.priorities or not self.classes:
            raise ValueError("rs, priorities, and classes must be non-empty")
        if self.population is not None and self.population <= 0:
            raise ValueError("population must be positive when set")
        if self.skew <= 0:
            raise ValueError("skew must be positive")


def poisson_arrivals(spec: WorkloadSpec) -> list[int]:
    """Integer arrival times of the spec's seeded Poisson process."""
    rng = np.random.default_rng(mix(spec.seed, _ARRIVAL_SALT))
    gaps = rng.exponential(1.0 / spec.rate, size=spec.queries)
    return [int(t) for t in np.floor(np.cumsum(gaps))]


def _exact_percentile(values: Sequence[int], q: float) -> float:
    """The smallest value with at least ``q`` of the sample at or below
    it — an exact order statistic, never a bucket upper bound."""
    if not values:
        return math.inf
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return float(ordered[rank - 1])


@dataclass
class WorkloadReport:
    """Outcome summary of one workload run."""

    outcomes: dict[int, QueryOutcome]
    submitted: int = 0
    completed: int = 0
    shed: int = 0
    deadline_exceeded: int = 0
    budget_exceeded: int = 0
    #: Turnaround (submission -> settlement) of every completed query.
    latencies: tuple[int, ...] = ()
    p50: float = math.inf
    p99: float = math.inf
    shed_rate: float = 0.0
    #: Minimum stats completeness over completed (admitted) queries.
    admitted_completeness: float = 1.0
    #: Highest per-peer busy fraction over the run (1.0 == saturated).
    max_saturation: float = 0.0
    #: Exceptions are never expected; kept to make the invariant visible.
    errors: int = 0
    #: Network messages summed over completed queries.
    messages_total: int = 0
    #: Result-cache counters (all zero when the engine has no cache).
    cache_hits: int = 0
    cache_semantic_hits: int = 0
    cache_messages_saved: int = 0
    #: Chosen-``r`` tallies of the adaptive controller (empty without one).
    fanout_decisions: dict[int, int] | None = None

    def as_dict(self) -> dict[str, float | int]:
        return {
            "submitted": self.submitted,
            "completed": self.completed,
            "shed": self.shed,
            "deadline_exceeded": self.deadline_exceeded,
            "budget_exceeded": self.budget_exceeded,
            "p50": self.p50,
            "p99": self.p99,
            "shed_rate": round(self.shed_rate, 6),
            "admitted_completeness": self.admitted_completeness,
            "max_saturation": round(self.max_saturation, 6),
            "errors": self.errors,
            "messages_total": self.messages_total,
            "cache_hits": self.cache_hits,
            "cache_semantic_hits": self.cache_semantic_hits,
            "cache_messages_saved": self.cache_messages_saved,
        }


def _reduce(outcomes: Mapping[int, QueryOutcome],
            engine: QueryEngine) -> WorkloadReport:
    report = WorkloadReport(outcomes=dict(outcomes))
    latencies: list[int] = []
    completeness = 1.0
    for outcome in outcomes.values():
        report.submitted += 1
        if isinstance(outcome, QueryCompleted):
            report.completed += 1
            latencies.append(outcome.turnaround)
            completeness = min(completeness, outcome.stats.completeness)
            report.messages_total += outcome.stats.total_messages
        elif isinstance(outcome, QueryRejected):
            report.shed += 1
        elif isinstance(outcome, QueryDeadlineExceeded):
            report.deadline_exceeded += 1
        elif isinstance(outcome, QueryBudgetExceeded):
            report.budget_exceeded += 1
    report.latencies = tuple(sorted(latencies))
    report.p50 = _exact_percentile(latencies, 0.50)
    report.p99 = _exact_percentile(latencies, 0.99)
    report.shed_rate = report.shed / max(1, report.submitted)
    report.admitted_completeness = completeness
    elapsed = engine.sim.now
    if elapsed > 0 and engine.sim.busy_time:
        report.max_saturation = min(1.0, max(
            busy / elapsed for busy in engine.sim.busy_time.values()))
    if engine.cache is not None:
        counters = engine.cache.snapshot()
        report.cache_hits = counters["hits"]
        report.cache_semantic_hits = counters["semantic_hits"]
        report.cache_messages_saved = counters["messages_saved"]
    if engine.fanout is not None:
        report.fanout_decisions = dict(engine.fanout.decisions)
    return report


def run_workload(
    overlay: QueryableOverlay,
    spec: WorkloadSpec,
    *,
    engine: QueryEngine,
    registry: MetricsRegistry | None = None,
    sink: TraceSink | None = None,
) -> WorkloadReport:
    """Drive ``engine`` with the spec's arrival schedule and reduce it.

    The query mix is drawn per arrival in a fixed order from one seeded
    generator (initiator, query family, scoring weights, r, priority,
    class), so the whole run is deterministic.  With
    ``spec.population`` the handler draw is replaced by a Zipf pick from
    a pre-drawn template pool (the repeated-query regime; all other
    per-arrival draws keep their order, and ``population=None`` runs
    are draw-for-draw identical to the legacy generator).  ``registry``
    (defaulting to the engine's) additionally receives the per-peer
    saturation histogram on top of the engine's own counters and
    latency histogram.
    """
    if sink is not None:
        engine.sink = sink
    if registry is not None:
        engine.registry = registry
    if spec.adaptive_r and engine.fanout is None:
        from .adaptive import AdaptiveFanout
        engine.fanout = AdaptiveFanout(rs=spec.rs)
    metrics = engine.registry
    rng = np.random.default_rng(mix(spec.seed, _QUERY_SALT))
    peers = overlay.peers()
    restriction = overlay.domain()
    dims = restriction.cover()[0].dims
    class_names = [name for name, _ in spec.classes]
    class_weights = np.asarray([max(0, w) for _, w in spec.classes], float)
    class_probs = class_weights / class_weights.sum()

    def draw_handler() -> TopKHandler | SkylineHandler:
        if rng.random() < spec.topk_fraction:
            weights = 0.25 + rng.random(dims)
            return TopKHandler(LinearScore(weights), spec.k)
        return SkylineHandler(dims)

    templates: list[TopKHandler | SkylineHandler] | None = None
    template_probs = None
    if spec.population is not None:
        templates = [draw_handler() for _ in range(spec.population)]
        ranks = np.arange(1, spec.population + 1, dtype=float)
        zipf = ranks ** -spec.skew
        template_probs = zipf / zipf.sum()
    for arrival in poisson_arrivals(spec):
        initiator = peers[int(rng.integers(0, len(peers)))]
        if templates is None:
            handler = draw_handler()
        else:
            handler = templates[
                int(rng.choice(len(templates), p=template_probs))]
        r = int(spec.rs[int(rng.integers(0, len(spec.rs)))])
        priority = int(
            spec.priorities[int(rng.integers(0, len(spec.priorities)))])
        weight_class = class_names[
            int(rng.choice(len(class_names), p=class_probs))]
        engine.submit_at(arrival, initiator, handler, r,
                         restriction=restriction, priority=priority,
                         weight_class=weight_class, deadline=spec.deadline,
                         max_events=spec.max_events, strict=spec.strict)
    outcomes = engine.run()
    report = _reduce(outcomes, engine)
    if metrics is not None:
        elapsed = engine.sim.now
        if elapsed > 0:
            saturation = metrics.histogram("peer.saturation",
                                           DEFAULT_SATURATION_BUCKETS)
            for busy in engine.sim.busy_time.values():
                saturation.observe(min(1.0, busy / elapsed))
    return report
