"""Load-adaptive selection of the ripple parameter ``r``.

The ripple parameter trades latency for traffic (Lemmas 1-3): ``r = 0``
is the parallel, latency-optimal extreme, larger ``r`` serializes
propagation and cuts messages.  Hand-picking one value bakes in a load
assumption — the ADiT line of work (Dabringer & Eder, PAPERS.md) instead
adapts the per-query degree of parallelism to observed load: messages
are what *cause* queueing, so under pressure the message-optimal end of
the spectrum wins, while an idle engine should always take the
latency-optimal end.

Two deterministic signals feed the controller:

* a **cost model** calibrated offline with the obs layer's
  :func:`~repro.obs.trace.replay` — one traced probe query per candidate
  ``r`` re-derives exactly the (latency, messages) frontier the paper's
  lemmas describe, for *this* overlay and handler family rather than an
  analytic idealization (:func:`calibrate_fanout`);
* the **observed queueing pressure** of the engine: instantaneous
  capacity/queue occupancy (:class:`EngineLoad`) blended with an EWMA of
  the queue-delay fraction of settled queries, so sustained congestion
  keeps steering even between bursts.

:meth:`AdaptiveFanout.choose` minimizes ``latency + pressure * weight *
messages`` over the candidate set — at zero pressure the latency-optimal
``r``, under saturation the message-optimal one.  Everything is pure
arithmetic over recorded quantities: two identical runs make identical
choices (``tests/net/test_adaptive.py`` pins determinism, and the
answers themselves are ``r``-invariant by the framework's correctness
property, so adaptation can never change what a query returns).

Wired into :class:`~repro.net.scheduler.QueryEngine` via its ``fanout``
parameter and into :func:`~repro.net.workload.run_workload` behind
``WorkloadSpec.adaptive_r``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from ..core.framework import PeerLike, run_ripple
from ..core.handler import QueryHandler
from ..core.regions import Region
from ..obs.trace import QueryTrace, replay

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids an import cycle)
    from .scheduler import QueryJob, QueryOutcome

__all__ = ["AdaptiveFanout", "CostEstimate", "CostModel", "EngineLoad",
           "calibrate_fanout"]


@dataclass(frozen=True)
class EngineLoad:
    """Instantaneous occupancy snapshot of a :class:`QueryEngine`."""

    running: int
    capacity: int
    waiting: int
    queue_limit: int

    @property
    def pressure(self) -> float:
        """Occupancy blend in ``[0, 1]``: how close to shedding we are.

        Capacity occupancy alone saturates early (the engine runs full
        long before queueing hurts), so the admission-queue fill —
        the direct precursor of shedding — carries equal weight.
        """
        busy = self.running / self.capacity
        queued = self.waiting / self.queue_limit if self.queue_limit else 0.0
        return min(1.0, 0.5 * busy + 0.5 * queued)


@dataclass(frozen=True)
class CostEstimate:
    """Replayed cost of one candidate ``r``: the lemma trade-off point."""

    latency: float
    messages: float


@dataclass(frozen=True)
class CostModel:
    """Per-``r`` cost frontier, typically from :func:`calibrate_fanout`."""

    estimates: Mapping[int, CostEstimate]

    def predict(self, r: int, pressure: float, weight: float) -> float:
        """Blended cost of running at ``r`` under ``pressure``.

        Messages are charged proportionally to pressure: on an idle
        engine they are free (latency decides), on a saturated one each
        message competes for the same peer service queues the query
        itself needs.
        """
        estimate = self.estimates[r]
        return estimate.latency + pressure * weight * estimate.messages


def calibrate_fanout(initiator: PeerLike, handler: QueryHandler,
                     rs: Sequence[int], *, restriction: Region,
                     strict: bool = True) -> CostModel:
    """Measure the (latency, messages) frontier of the candidate ``r``s.

    Runs one traced probe query per candidate and re-derives its costs
    with :func:`~repro.obs.trace.replay` — the recorded trace is the
    cost model, not an analytic approximation.  Probe queries are
    ordinary executions: they warm per-store computation caches but
    change no answers.
    """
    estimates: dict[int, CostEstimate] = {}
    for r in sorted(set(int(r) for r in rs)):
        trace = QueryTrace()
        run_ripple(initiator, handler, r, restriction=restriction,
                   strict=strict, sink=trace)
        replayed = replay(trace)
        estimates[r] = CostEstimate(latency=float(replayed.latency),
                                    messages=float(replayed.total_messages))
    return CostModel(estimates)


@dataclass
class AdaptiveFanout:
    """The per-query ``r`` controller a :class:`QueryEngine` consults.

    With a :class:`CostModel` the choice minimizes the pressure-blended
    predicted cost; without one a threshold ladder over the candidate
    set applies (idle -> smallest ``r``, saturated -> largest, the
    middle candidate in between).  ``observe`` folds each settled
    query's queue-delay fraction into the pressure EWMA.
    """

    rs: tuple[int, ...] = (0, 1, 2)
    cost_model: CostModel | None = None
    #: Message cost multiplier at full pressure (cost-model mode).
    message_weight: float = 2.0
    #: Pressure thresholds of the ladder (model-free mode).
    low: float = 0.25
    high: float = 0.75
    #: EWMA smoothing factor of the observed queue-delay fraction.
    smoothing: float = 0.3
    #: Chosen-``r`` tallies, for reports and the benchmark gate.
    decisions: dict[int, int] = field(default_factory=dict)
    _pressure: float = 0.0

    def __post_init__(self) -> None:
        self.rs = tuple(sorted(set(int(r) for r in self.rs)))
        if not self.rs:
            raise ValueError("need at least one candidate r")
        if self.cost_model is not None:
            missing = [r for r in self.rs
                       if r not in self.cost_model.estimates]
            if missing:
                raise ValueError(f"cost model lacks candidates {missing}")
        for r in self.rs:
            self.decisions.setdefault(r, 0)

    @property
    def pressure(self) -> float:
        """The controller's current queue-delay EWMA."""
        return self._pressure

    def choose(self, job: "QueryJob", load: EngineLoad) -> int:
        """The ``r`` this query should run at, given current load."""
        pressure = max(load.pressure, self._pressure)
        if self.cost_model is not None:
            best = self.rs[0]
            best_cost = self.cost_model.predict(best, pressure,
                                                self.message_weight)
            for r in self.rs[1:]:
                cost = self.cost_model.predict(r, pressure,
                                               self.message_weight)
                if cost < best_cost:
                    best, best_cost = r, cost
            choice = best
        elif pressure <= self.low:
            choice = self.rs[0]
        elif pressure >= self.high:
            choice = self.rs[-1]
        else:
            choice = self.rs[len(self.rs) // 2]
        self.decisions[choice] = self.decisions.get(choice, 0) + 1
        return choice

    def observe(self, outcome: "QueryOutcome") -> None:
        """Fold a settled query's congestion evidence into the EWMA."""
        turnaround = max(1, outcome.turnaround)
        fraction = min(1.0, outcome.stats.queue_delay / turnaround)
        self._pressure += self.smoothing * (fraction - self._pressure)
