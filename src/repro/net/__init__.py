"""Simulation runtime: cost accounting, routing, and fault injection."""

from typing import Any

from .context import DuplicateVisitError, QueryContext, QueryResult, QueryStats
from .routing import RoutingError, greedy_route, route_around

__all__ = ["DuplicateVisitError", "QueryContext", "QueryResult",
           "QueryStats", "RoutingError", "greedy_route", "route_around",
           "EventSimulator", "SimulationBudgetExceeded",
           "event_driven_ripple", "DEFAULT_MAX_EVENTS",
           "FailureDetector", "FaultPlan", "region_volume",
           "resilient_ripple",
           "AdmissionPolicy", "FifoPolicy", "PriorityPolicy",
           "WeightedFairPolicy", "QueryJob", "QueryOutcome",
           "QueryCompleted", "QueryRejected", "QueryDeadlineExceeded",
           "QueryBudgetExceeded", "QueryEngine",
           "WorkloadSpec", "WorkloadReport", "poisson_arrivals",
           "run_workload",
           "CacheDirectory", "CacheEntry", "CacheLookup",
           "handler_fingerprint", "region_fingerprint",
           "AdaptiveFanout", "CostEstimate", "CostModel", "EngineLoad",
           "calibrate_fanout"]

_EVENTSIM = {"EventSimulator", "SimulationBudgetExceeded",
             "event_driven_ripple", "DEFAULT_MAX_EVENTS"}
_FAULTS = {"FaultPlan", "region_volume", "resilient_ripple"}
_DETECTOR = {"FailureDetector"}
_SCHEDULER = {"AdmissionPolicy", "FifoPolicy", "PriorityPolicy",
              "WeightedFairPolicy", "QueryJob", "QueryOutcome",
              "QueryCompleted", "QueryRejected", "QueryDeadlineExceeded",
              "QueryBudgetExceeded", "QueryEngine"}
_WORKLOAD = {"WorkloadSpec", "WorkloadReport", "poisson_arrivals",
             "run_workload"}
_RESULTCACHE = {"CacheDirectory", "CacheEntry", "CacheLookup",
                "handler_fingerprint", "region_fingerprint"}
_ADAPTIVE = {"AdaptiveFanout", "CostEstimate", "CostModel", "EngineLoad",
             "calibrate_fanout"}


def __getattr__(name: str) -> Any:
    # Lazy so that repro.core.framework can import .context while this
    # package initializes without cycling through the engines (which
    # import the framework back).
    if name in _EVENTSIM:
        from . import eventsim
        return getattr(eventsim, name)
    if name in _FAULTS:
        from . import faults
        return getattr(faults, name)
    if name in _DETECTOR:
        from . import detector
        return getattr(detector, name)
    if name in _SCHEDULER:
        from . import scheduler
        return getattr(scheduler, name)
    if name in _WORKLOAD:
        from . import workload
        return getattr(workload, name)
    if name in _RESULTCACHE:
        from . import resultcache
        return getattr(resultcache, name)
    if name in _ADAPTIVE:
        from . import adaptive
        return getattr(adaptive, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
