"""Simulation runtime: cost accounting and overlay-agnostic routing."""

from .context import DuplicateVisitError, QueryContext, QueryResult, QueryStats
from .routing import RoutingError, greedy_route

__all__ = ["DuplicateVisitError", "QueryContext", "QueryResult",
           "QueryStats", "RoutingError", "greedy_route"]
