"""Simulation runtime: cost accounting, routing, and fault injection."""

from typing import Any

from .context import DuplicateVisitError, QueryContext, QueryResult, QueryStats
from .routing import RoutingError, greedy_route, route_around

__all__ = ["DuplicateVisitError", "QueryContext", "QueryResult",
           "QueryStats", "RoutingError", "greedy_route", "route_around",
           "EventSimulator", "SimulationBudgetExceeded",
           "event_driven_ripple", "DEFAULT_MAX_EVENTS",
           "FailureDetector", "FaultPlan", "region_volume",
           "resilient_ripple"]

_EVENTSIM = {"EventSimulator", "SimulationBudgetExceeded",
             "event_driven_ripple", "DEFAULT_MAX_EVENTS"}
_FAULTS = {"FaultPlan", "region_volume", "resilient_ripple"}
_DETECTOR = {"FailureDetector"}


def __getattr__(name: str) -> Any:
    # Lazy so that repro.core.framework can import .context while this
    # package initializes without cycling through the engines (which
    # import the framework back).
    if name in _EVENTSIM:
        from . import eventsim
        return getattr(eventsim, name)
    if name in _FAULTS:
        from . import faults
        return getattr(faults, name)
    if name in _DETECTOR:
        from . import detector
        return getattr(detector, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
