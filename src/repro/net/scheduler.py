"""Admission control and concurrent scheduling of RIPPLE queries.

The single-query engines (:func:`~repro.net.eventsim.event_driven_ripple`,
:func:`~repro.net.faults.resilient_ripple`) run one query to completion
on a private simulator — overload literally cannot happen.  This module
supplies the serving-stack view the ROADMAP's north star implies: a
:class:`QueryEngine` multiplexes many queries over one shared
:class:`~repro.net.eventsim.EventSimulator` (and therefore over shared
per-peer service queues), with

* **admission control** — at most ``capacity`` queries run concurrently;
  excess arrivals wait in a bounded admission queue ordered by a
  pluggable :class:`AdmissionPolicy` (FIFO, priority, weighted-fair);
* **load shedding** — an arrival finding the admission queue full is
  rejected immediately with a typed :class:`QueryRejected` outcome
  instead of growing an unbounded backlog;
* **deadline budgets** — a query past its deadline is cancelled, its
  in-flight events dropped by the simulator, and the caller receives a
  typed :class:`QueryDeadlineExceeded` outcome carrying the partial
  stats collected up to the deadline (mirroring
  :class:`~repro.net.eventsim.SimulationBudgetExceeded`);
* **per-query event budgets** — one runaway query blows its own
  ``max_events`` cap (:class:`QueryBudgetExceeded`) without exhausting a
  shared simulator budget and killing its co-tenants.

Degradation is graceful by construction: every submitted query produces
exactly one :class:`QueryOutcome`, admitted queries that complete do so
with the same answers and stats the single-query engines would produce,
and overload only ever converts *whole* queries into typed rejected /
deadline outcomes — it never silently corrupts an admitted query.

Bit-identity: with one in-flight query, ``service_time == 0`` and no
faults the engine reproduces :func:`event_driven_ripple` exactly; with a
fault plan it reproduces :func:`resilient_ripple` (same event order,
answers and :class:`~repro.net.context.QueryStats`).  The property tests
in ``tests/net/test_scheduler.py`` pin this across the overlay × handler
matrix.  See ``docs/LOAD.md`` for the queueing model and guarantees.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Hashable, Mapping, Sequence

from ..core.framework import SLOW, PeerLike
from ..core.handler import QueryHandler
from ..core.regions import Region, region_volume
from ..obs.metrics import MetricsRegistry
from ..obs.trace import TraceSink, state_size
from .adaptive import AdaptiveFanout, EngineLoad
from .context import QueryContext, QueryResult, QueryStats
from .detector import FailureDetector
from .eventsim import DEFAULT_MAX_EVENTS, EventSimulator, _Invocation
from .resultcache import CacheDirectory

if TYPE_CHECKING:  # pragma: no cover - type-only (avoids an import cycle)
    from ..overlays.replication import ReplicaDirectory
    from .faults import FaultPlan

__all__ = ["AdmissionPolicy", "FifoPolicy", "PriorityPolicy",
           "WeightedFairPolicy", "QueryJob", "QueryOutcome",
           "QueryCompleted", "QueryRejected", "QueryDeadlineExceeded",
           "QueryBudgetExceeded", "QueryEngine"]

#: Histogram bounds (time units) for the end-to-end query latency metric.
DEFAULT_LATENCY_BUCKETS = (4, 8, 16, 32, 64, 128, 256, 512, 1024)


@dataclass(frozen=True)
class QueryJob:
    """One query submitted to a :class:`QueryEngine`.

    ``deadline`` and ``max_events`` are per-query budgets: the deadline
    is *relative* to the submission time (wall budget in simulation time
    units, covering admission queueing, retries, and replica recovery),
    the event budget bounds simulator work done on the query's behalf.
    ``strict`` overrides the engine's default duplicate-visit mode
    (strict without faults, dedup under a fault plan — matching the
    single-query engines).
    """

    job_id: int
    initiator: PeerLike
    handler: QueryHandler
    r: int
    restriction: Region
    priority: int = 0
    weight_class: str = "default"
    deadline: int | None = None
    max_events: int | None = None
    strict: bool | None = None


@dataclass
class QueryOutcome:
    """Terminal disposition of one submitted query.

    Every submission yields exactly one outcome; ``stats`` is the
    (possibly partial) cost ledger — accurate for whatever work actually
    happened, with ``completeness`` bounding answer quality.
    """

    job: QueryJob
    stats: QueryStats
    submitted_at: int
    finished_at: int

    @property
    def turnaround(self) -> int:
        """End-to-end time from submission to settlement (includes
        admission queueing; the open-loop latency metric)."""
        return self.finished_at - self.submitted_at


@dataclass
class QueryCompleted(QueryOutcome):
    """The query ran to completion; ``answer`` is its finalized result."""

    answer: Any = None


@dataclass
class QueryRejected(QueryOutcome):
    """Shed at admission: the bounded queue was full.  No work ran, so
    the stats are empty with ``completeness == 0.0``."""

    reason: str = "queue-full"


@dataclass
class QueryDeadlineExceeded(QueryOutcome):
    """Cancelled past its deadline budget; carries the partial stats
    collected up to the deadline (``deadline`` is the absolute time)."""

    deadline: int = 0


@dataclass
class QueryBudgetExceeded(QueryOutcome):
    """Cancelled after blowing its per-query event budget ``cap``."""

    cap: int = 0


class AdmissionPolicy:
    """Strategy ordering the bounded admission queue.

    :meth:`select` picks which waiting job to admit next (an index into
    ``waiting``); :meth:`admitted` observes the choice so stateful
    policies (weighted fairness) can account it.
    """

    name = "base"

    def select(self, waiting: Sequence[QueryJob]) -> int:
        raise NotImplementedError

    def admitted(self, job: QueryJob) -> None:  # noqa: B027 - optional hook
        """Observe an admission; default policies keep no state."""


class FifoPolicy(AdmissionPolicy):
    """Admit strictly in arrival order."""

    name = "fifo"

    def select(self, waiting: Sequence[QueryJob]) -> int:
        return 0


class PriorityPolicy(AdmissionPolicy):
    """Admit the highest ``priority`` first; FIFO among equals."""

    name = "priority"

    def select(self, waiting: Sequence[QueryJob]) -> int:
        best = 0
        for index in range(1, len(waiting)):
            if waiting[index].priority > waiting[best].priority:
                best = index
        return best


class WeightedFairPolicy(AdmissionPolicy):
    """Share admissions across ``weight_class``es proportionally.

    Classic weighted round-robin on admission counts: always admit from
    the waiting class with the smallest ``admitted / weight`` ratio, so
    a flood of one class cannot starve the others; within a class, FIFO.
    Unknown classes default to weight 1.
    """

    name = "weighted-fair"

    def __init__(self, weights: Mapping[str, float] | None = None) -> None:
        self.weights = dict(weights or {})
        for cls, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(f"weight of class {cls!r} must be > 0")
        self._admitted: dict[str, int] = {}

    def _ratio(self, weight_class: str) -> float:
        weight = self.weights.get(weight_class, 1.0)
        return self._admitted.get(weight_class, 0) / weight

    def select(self, waiting: Sequence[QueryJob]) -> int:
        best = 0
        best_ratio = self._ratio(waiting[0].weight_class)
        for index in range(1, len(waiting)):
            ratio = self._ratio(waiting[index].weight_class)
            if ratio < best_ratio:
                best, best_ratio = index, ratio
        return best

    def admitted(self, job: QueryJob) -> None:
        self._admitted[job.weight_class] = \
            self._admitted.get(job.weight_class, 0) + 1


@dataclass
class _Running:
    """Book-keeping for one admitted, in-flight query."""

    job: QueryJob
    ctx: QueryContext
    span: int = 0


class QueryEngine:
    """Concurrent multi-query executor with admission control.

    ``capacity`` bounds concurrently running queries, ``queue_limit``
    the admission queue behind them (arrivals beyond both are shed).
    ``faults`` / ``replicas`` enable the same supervised delivery and
    self-healing machinery as :func:`~repro.net.faults.resilient_ripple`;
    ``service_time`` turns on the per-peer service-queue model.

    ``cache`` attaches a :class:`~repro.net.resultcache.CacheDirectory`:
    exact hits settle at admission with the remembered answer and
    zero-cost stats, semantic hits seed the root state, and completed
    queries are stored back.  The engine only consults it on a
    zero-fault configuration — under a fault plan a cold run may be
    partial, which would break the warm == cold bit-identity guarantee —
    but still wires :meth:`~repro.net.resultcache.CacheDirectory.watch_replicas`
    so crash promotions invalidate.  ``fanout`` attaches an
    :class:`~repro.net.adaptive.AdaptiveFanout` controller that
    overrides each admitted job's ``r`` from the observed load
    (answers are ``r``-invariant, so only costs change).

    Usage: :meth:`submit` (now) or :meth:`submit_at` (open-loop arrival
    times), then :meth:`run` to drain the simulation; outcomes are
    returned keyed by job id.  The engine is reusable: later submissions
    after a drain start a new busy period on the same simulator clock.
    """

    def __init__(
        self,
        *,
        capacity: int = 4,
        queue_limit: int = 16,
        policy: AdmissionPolicy | None = None,
        faults: "FaultPlan | None" = None,
        replicas: "ReplicaDirectory | None" = None,
        service_time: int = 0,
        max_events_per_query: int | None = DEFAULT_MAX_EVENTS,
        registry: MetricsRegistry | None = None,
        sink: TraceSink | None = None,
        cache: CacheDirectory | None = None,
        fanout: AdaptiveFanout | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if queue_limit < 0:
            raise ValueError("queue_limit must be non-negative")
        self.capacity = capacity
        self.queue_limit = queue_limit
        self.policy = policy if policy is not None else FifoPolicy()
        self.faults = faults
        self.max_events_per_query = max_events_per_query
        self.registry = registry
        self.sink = sink
        # The shared simulator carries no global cap: budgets are per
        # query, so one runaway cannot take down its co-tenants.
        self.sim = EventSimulator(faults=faults, max_events=None,
                                  service_time=service_time)
        self.sim.on_overrun = self._on_overrun
        self.detector: FailureDetector | None = None
        self._replicas = replicas
        if replicas is not None:
            replicas.refresh()
            self.sim.replicas = replicas
        self.cache = cache
        self.fanout = fanout
        if cache is not None and replicas is not None:
            cache.watch_replicas(replicas)
        self._job_ids = itertools.count()
        self._waiting: list[QueryJob] = []
        self._running: dict[int, _Running] = {}
        self._submitted_at: dict[int, int] = {}
        self.outcomes: dict[int, QueryOutcome] = {}

    def _alive(self, peer_id: Hashable) -> bool:
        assert self.faults is not None
        return self.faults.alive(peer_id, self.sim.now)

    def _load(self) -> EngineLoad:
        """The occupancy snapshot the fanout controller decides on."""
        return EngineLoad(running=len(self._running), capacity=self.capacity,
                          waiting=len(self._waiting),
                          queue_limit=self.queue_limit)

    # -- submission --------------------------------------------------------

    def submit(
        self,
        initiator: PeerLike,
        handler: QueryHandler,
        r: int = 0,
        *,
        restriction: Region,
        priority: int = 0,
        weight_class: str = "default",
        deadline: int | None = None,
        max_events: int | None = None,
        strict: bool | None = None,
    ) -> int:
        """Submit a query at the current simulation time; returns its id."""
        job = QueryJob(job_id=next(self._job_ids), initiator=initiator,
                       handler=handler, r=r, restriction=restriction,
                       priority=priority, weight_class=weight_class,
                       deadline=deadline, max_events=max_events,
                       strict=strict)
        self._admit(job)
        return job.job_id

    def submit_at(
        self,
        time: int,
        initiator: PeerLike,
        handler: QueryHandler,
        r: int = 0,
        *,
        restriction: Region,
        priority: int = 0,
        weight_class: str = "default",
        deadline: int | None = None,
        max_events: int | None = None,
        strict: bool | None = None,
    ) -> int:
        """Schedule a submission at absolute simulation ``time``.

        The open-loop entry point: a workload driver posts its whole
        arrival schedule up front, then :meth:`run` plays it out.
        """
        if time < self.sim.now:
            raise ValueError("cannot submit into the past")
        job = QueryJob(job_id=next(self._job_ids), initiator=initiator,
                       handler=handler, r=r, restriction=restriction,
                       priority=priority, weight_class=weight_class,
                       deadline=deadline, max_events=max_events,
                       strict=strict)
        self.sim.schedule(time - self.sim.now, lambda: self._admit(job))
        return job.job_id

    def _admit(self, job: QueryJob) -> None:
        self._submitted_at[job.job_id] = self.sim.now
        self._count("queries.submitted")
        if len(self._running) < self.capacity:
            self.policy.admitted(job)
            self._launch(job)
        elif len(self._waiting) < self.queue_limit:
            self._waiting.append(job)
        else:
            self._shed(job)

    def _shed(self, job: QueryJob) -> None:
        self._count("queries.shed")
        stats = QueryStats(completeness=0.0)
        self._settle(QueryRejected(job=job, stats=stats,
                                   submitted_at=self._submitted_at[job.job_id],
                                   finished_at=self.sim.now))

    # -- execution ---------------------------------------------------------

    def _launch(self, job: QueryJob) -> None:
        seed_state: Any = None
        consulted = self.cache is not None and self.faults is None
        if consulted:
            assert self.cache is not None
            hit = self.cache.lookup(job.handler, job.restriction)
            if hit.is_exact:
                # Settled at admission: the remembered answer, zero cost.
                # No capacity was consumed, so nothing frees up either.
                self._count("queries.admitted")
                self._count("queries.completed")
                if self.sink is not None and self.sink.enabled:
                    span = self.sink.begin_span(
                        "query", job.initiator.peer_id, self.sim.now,
                        query=job.job_id, r=job.r,
                        region=repr(job.restriction), cache="exact")
                    self.sink.event("cache-hit", self.sim.now, span=span,
                                    saved=hit.saved)
                    self.sink.end_span(span, self.sim.now,
                                       status="completed")
                self._settle(QueryCompleted(
                    job=job, stats=QueryStats(), answer=hit.answer,
                    submitted_at=self._submitted_at[job.job_id],
                    finished_at=self.sim.now))
                return
            if hit.kind == "seed":
                seed_state = hit.state
        plan = self.faults
        if plan is not None:
            plan.protect(job.initiator.peer_id)
        # The detector is built lazily, after the first initiator is
        # protected, and started before the root is scheduled — the same
        # construction order as resilient_ripple (bit-identity: protected
        # peers are excluded from the probe set, so probe-loss draws stay
        # aligned with the single-query engine's).
        if (self.detector is None and self._replicas is not None
                and plan is not None and plan.can_fail):
            replicas = self._replicas
            self.detector = FailureDetector(
                self.sim, plan,
                (p.peer_id for p in replicas.owners()),
                on_dead=lambda pid: replicas.repair(
                    pid, lambda hid: self._alive(hid)),
                on_alive=replicas.demote)
            self.sim.detector = self.detector
        if self.detector is not None:
            self.detector.start()
        strict = (plan is None) if job.strict is None else job.strict
        ctx = QueryContext(strict=strict)
        ctx.query_id = job.job_id
        ctx.started_at = self.sim.now
        ctx.max_events = job.max_events if job.max_events is not None \
            else self.max_events_per_query
        if job.deadline is not None:
            # The deadline budget starts at submission: time spent in the
            # admission queue is part of the query's wall budget.
            ctx.deadline = self._submitted_at[job.job_id] + job.deadline
        if self.sink is not None:
            ctx.sink = self.sink
        if plan is not None:
            ctx.restriction_volume = region_volume(job.restriction)
        r = job.r if self.fanout is None \
            else self.fanout.choose(job, self._load())
        entry = _Running(job=job, ctx=ctx)
        if ctx.sink.enabled:
            entry.span = ctx.sink.begin_span(
                "query", job.initiator.peer_id, self.sim.now,
                query=job.job_id, r=r, region=repr(job.restriction),
                weight_class=job.weight_class, priority=job.priority)
            if consulted:
                if seed_state is not None:
                    ctx.sink.event("cache-seed", self.sim.now,
                                   span=entry.span,
                                   size=state_size(seed_state))
                else:
                    ctx.sink.event("cache-miss", self.sim.now,
                                   span=entry.span)
        self._running[job.job_id] = entry
        self._count("queries.admitted")

        def finish(states: list[Any]) -> None:
            self._complete(job.job_id)

        initial = job.handler.initial_state() if seed_state is None \
            else seed_state
        root = _Invocation(self.sim, ctx, job.handler, job.initiator,
                           initial, job.restriction,
                           min(r, SLOW), job.initiator.peer_id, finish,
                           parent_span=entry.span or None)
        self.sim.schedule(0, root.start, ctx)

    def _complete(self, job_id: int) -> None:
        entry = self._running.pop(job_id, None)
        if entry is None:  # already settled (cancelled while finishing)
            return
        ctx, job = entry.ctx, entry.job
        if self.faults is not None:
            latency = max(0, ctx.last_activity - ctx.started_at)
        else:
            latency = self.sim.now - ctx.started_at
        stats = ctx.stats(latency)
        answer = job.handler.finalize(ctx.collected_answers)
        if ctx.sink.enabled:
            ctx.sink.end_span(entry.span, self.sim.now, status="completed")
        if self.cache is not None and self.faults is None:
            self.cache.store(job.handler, job.restriction,
                             QueryResult(answer, stats), ctx.processed)
        self._count("queries.completed")
        self._settle(QueryCompleted(
            job=job, stats=stats, answer=answer,
            submitted_at=self._submitted_at[job_id],
            finished_at=self.sim.now))
        self._admit_next()

    def _on_overrun(self, ctx: QueryContext, reason: str) -> None:
        """Simulator hook: ``ctx`` blew its deadline or event budget."""
        job_id = ctx.query_id
        assert isinstance(job_id, int)
        entry = self._running.pop(job_id, None)
        if entry is None:
            return
        job = entry.job
        submitted = self._submitted_at[job_id]
        outcome: QueryOutcome
        if reason == "deadline":
            assert ctx.deadline is not None
            stats = ctx.stats(max(0, ctx.deadline - ctx.started_at))
            self._count("queries.deadline_exceeded")
            outcome = QueryDeadlineExceeded(
                job=job, stats=stats, submitted_at=submitted,
                finished_at=ctx.deadline, deadline=ctx.deadline)
        else:
            stats = ctx.stats(max(0, self.sim.now - ctx.started_at))
            assert ctx.max_events is not None
            self._count("queries.budget_exceeded")
            outcome = QueryBudgetExceeded(
                job=job, stats=stats, submitted_at=submitted,
                finished_at=self.sim.now, cap=ctx.max_events)
        if ctx.sink.enabled:
            ctx.sink.end_span(entry.span, self.sim.now, status=reason)
        self._settle(outcome)
        self._admit_next()

    def _admit_next(self) -> None:
        """Fill freed capacity from the admission queue (policy order)."""
        while self._waiting and len(self._running) < self.capacity:
            job = self._waiting.pop(self.policy.select(self._waiting))
            submitted = self._submitted_at[job.job_id]
            if job.deadline is not None \
                    and self.sim.now > submitted + job.deadline:
                # Its whole wall budget drained in the admission queue.
                self._count("queries.deadline_exceeded")
                self._settle(QueryDeadlineExceeded(
                    job=job, stats=QueryStats(completeness=0.0),
                    submitted_at=submitted,
                    finished_at=submitted + job.deadline,
                    deadline=submitted + job.deadline))
                continue
            self.policy.admitted(job)
            self._launch(job)
        if not self._running and not self._waiting \
                and self.detector is not None:
            self.detector.stop()

    def _settle(self, outcome: QueryOutcome) -> None:
        self.outcomes[outcome.job.job_id] = outcome
        if self.fanout is not None and isinstance(outcome, QueryCompleted):
            self.fanout.observe(outcome)
        if self.registry is not None and isinstance(outcome, QueryCompleted):
            self.registry.histogram(
                "query.latency",
                DEFAULT_LATENCY_BUCKETS).observe(outcome.turnaround)
        if not self._running and not self._waiting \
                and self.detector is not None:
            self.detector.stop()

    def _count(self, name: str) -> None:
        if self.registry is not None:
            self.registry.counter(name).inc()

    # -- draining ----------------------------------------------------------

    def run(self) -> dict[int, QueryOutcome]:
        """Drain the simulation; every submitted query gets an outcome."""
        self.sim.run()
        if self.detector is not None:
            self.detector.stop()
        return self.outcomes

    def result_of(self, job_id: int) -> QueryOutcome:
        return self.outcomes[job_id]
