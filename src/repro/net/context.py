"""Bookkeeping for one simulated distributed query.

The paper evaluates distributed algorithms on two metrics (Section 7.1):

* **latency** — number of hops on the critical path of query propagation.
  Parallel forwards contribute ``1 + max(child latencies)``; sequential,
  response-waiting forwards contribute ``sum(1 + child latency)``.  This
  matches Lemmas 1–3 exactly (response/return hops are not part of query
  propagation latency).
* **congestion** — how many peers end up processing a query; averaged over
  uniformly issued queries this equals the paper's "average number of
  queries processed at any peer when n queries are issued".

A :class:`QueryContext` is threaded through a single query execution and
collects these plus secondary traffic metrics (messages, shipped tuples).
Multi-round operations (k-diversification) merge the contexts of their
sub-queries with :meth:`QueryStats.combine_sequential`.

Fault accounting (see :mod:`repro.net.faults`): executions under an
injected :class:`~repro.net.faults.FaultPlan` additionally record fired
timeouts, retransmissions, re-routed forwards, dropped messages, and the
domain volume that could not be reached.  The headline robustness metric
is **completeness** — the fraction of the restricted domain volume that
was actually processed — so a degraded query returns a partial answer
with an explicit quality bound instead of hanging or crashing.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Hashable

from ..obs.trace import NULL_SINK, TraceSink

__all__ = ["QueryContext", "QueryStats", "QueryResult", "DuplicateVisitError"]


class DuplicateVisitError(RuntimeError):
    """A peer processed the same query twice under strict single-visit mode.

    Over overlays with exact, partitioning link regions (MIDAS, Chord) a
    double visit indicates a broken region partition, so the simulator
    fails loudly.  Overlays with conservative region covers (CAN frustums)
    run with ``strict=False`` and dedup instead, like real deployments.
    """


@dataclass
class QueryStats:
    """Immutable-after-collection summary of one (sub-)query's cost."""

    latency: int = 0
    processed: int = 0
    forward_messages: int = 0
    response_messages: int = 0
    answer_messages: int = 0
    tuples_shipped: int = 0
    #: Time units query work spent waiting in per-peer service queues
    #: (nonzero only when the engine models a per-peer service rate; see
    #: :class:`~repro.net.eventsim.EventSimulator` and docs/LOAD.md).
    queue_delay: int = 0
    # -- fault accounting (nonzero only under an injected FaultPlan) ------
    timeouts: int = 0
    retries: int = 0
    reroutes: int = 0
    dropped_messages: int = 0
    ack_messages: int = 0
    unreachable_volume: float = 0.0
    #: Stranded restriction regions rescued by promoting a replica holder
    #: (see :mod:`repro.overlays.replication`) instead of being abandoned.
    regions_recovered: int = 0
    #: Local reductions served from a replica of a dead peer's store.
    replica_reads: int = 0
    #: Fraction of the restricted domain volume actually processed; 1.0
    #: for fault-free executions, < 1.0 when regions were abandoned.
    completeness: float = 1.0

    @property
    def total_messages(self) -> int:
        return self.forward_messages + self.response_messages + self.answer_messages

    def combine_sequential(self, other: "QueryStats") -> "QueryStats":
        """Aggregate a follow-up round executed after this one.

        Completeness combines by ``min``: a multi-round answer is only as
        complete as its least complete round.
        """
        return QueryStats(
            latency=self.latency + other.latency,
            processed=self.processed + other.processed,
            forward_messages=self.forward_messages + other.forward_messages,
            response_messages=self.response_messages + other.response_messages,
            answer_messages=self.answer_messages + other.answer_messages,
            tuples_shipped=self.tuples_shipped + other.tuples_shipped,
            queue_delay=self.queue_delay + other.queue_delay,
            timeouts=self.timeouts + other.timeouts,
            retries=self.retries + other.retries,
            reroutes=self.reroutes + other.reroutes,
            dropped_messages=self.dropped_messages + other.dropped_messages,
            ack_messages=self.ack_messages + other.ack_messages,
            unreachable_volume=self.unreachable_volume + other.unreachable_volume,
            regions_recovered=self.regions_recovered + other.regions_recovered,
            replica_reads=self.replica_reads + other.replica_reads,
            completeness=min(self.completeness, other.completeness),
        )

    def as_dict(self) -> dict[str, int | float]:
        """Every metric (including derived ones) as a flat JSON-ready dict."""
        out: dict[str, int | float] = asdict(self)
        out["total_messages"] = self.total_messages
        return out


@dataclass
class QueryResult:
    """Final answer of a distributed query together with its cost."""

    answer: Any
    stats: QueryStats


@dataclass
class QueryContext:
    """Mutable ledger threaded through one query execution."""

    strict: bool = True
    visited: set[Hashable] = field(default_factory=set)
    processed: set[Hashable] = field(default_factory=set)
    #: Peers that may legally be reached again without error even under
    #: strict mode (e.g. peers already processed by a seeding route).
    revisitable: set[Hashable] = field(default_factory=set)
    forward_messages: int = 0
    response_messages: int = 0
    answer_messages: int = 0
    tuples_shipped: int = 0
    collected_answers: list[Any] = field(default_factory=list)
    # -- fault accounting -------------------------------------------------
    timeouts: int = 0
    retries: int = 0
    reroutes: int = 0
    dropped_messages: int = 0
    ack_messages: int = 0
    unreachable_volume: float = 0.0
    regions_recovered: int = 0
    replica_reads: int = 0
    #: Volume of the query's initial restriction area; the denominator of
    #: the completeness metric.  0.0 means "not tracked" (fault-free
    #: engines) and yields completeness 1.0.
    restriction_volume: float = 0.0
    #: High-water mark of simulation time at which real query progress
    #: happened; the latency of a resilient execution (control events such
    #: as cancelled timers must not stretch the critical path).
    last_activity: int = 0
    # -- concurrent scheduling (see repro.net.scheduler, docs/LOAD.md) ----
    #: Identity of this query inside a concurrent engine; ``None`` for
    #: standalone single-query executions.
    query_id: Hashable | None = None
    #: Absolute simulation time past which this query is over budget.
    #: ``None`` disables deadline enforcement (the single-query default).
    deadline: int | None = None
    #: Per-query event budget; ``None`` defers to the simulator's global
    #: cap.  Under a concurrent engine every query gets its own budget so
    #: one runaway cannot exhaust a shared cap and kill its co-tenants.
    max_events: int | None = None
    #: Events the simulator has executed on this query's behalf.
    events_executed: int = 0
    #: Simulation time this query's root invocation was launched; the
    #: zero point of its latency measurements under concurrency.
    started_at: int = 0
    #: Set when the query is cancelled (deadline blown, budget exhausted):
    #: the simulator drops the query's still-queued events instead of
    #: executing them, so a dead query cannot poison shared peer queues.
    cancelled: bool = False
    #: Why the query was cancelled (``"deadline"`` / ``"budget"``).
    cancel_reason: str | None = None
    #: Accumulated time units this query's messages spent queued behind
    #: other traffic at busy peers (see EventSimulator.service_time).
    queue_delay: int = 0
    #: Observability hook (see :mod:`repro.obs.trace`): the engines emit
    #: hop-level spans and events here.  The default :data:`NULL_SINK`
    #: is stateless and permanently disabled, so unobserved executions
    #: pay one attribute test per instrumentation site and nothing else.
    sink: TraceSink = NULL_SINK

    def begin_processing(self, peer_id: Hashable) -> bool:
        """Record a visit; return True when the peer processes local data.

        The first visit processes; re-visits (possible only with
        conservative region covers) merely route.  Under ``strict`` a
        re-visit raises :class:`DuplicateVisitError`.
        """
        if peer_id in self.processed:
            if self.strict and peer_id not in self.revisitable:
                raise DuplicateVisitError(f"peer {peer_id!r} visited twice")
            return False
        self.processed.add(peer_id)
        return True

    def on_forward(self) -> None:
        self.forward_messages += 1

    def on_response(self, count: int = 1) -> None:
        self.response_messages += count

    def on_answer(self, answer: Any, size: int) -> None:
        """A peer ships ``size`` qualifying tuples straight to the initiator."""
        self.collected_answers.append(answer)
        if size > 0:
            self.answer_messages += 1
            self.tuples_shipped += size

    # -- fault events ------------------------------------------------------

    def on_timeout(self) -> None:
        self.timeouts += 1

    def on_retry(self) -> None:
        self.retries += 1

    def on_reroute(self) -> None:
        self.reroutes += 1

    def on_drop(self) -> None:
        self.dropped_messages += 1

    def on_ack(self) -> None:
        self.ack_messages += 1

    def on_unreachable(self, volume: float) -> None:
        """A restriction region was abandoned after exhausting recovery."""
        self.unreachable_volume += volume

    def on_region_recovered(self) -> None:
        """A stranded region was re-issued against a promoted replica."""
        self.regions_recovered += 1

    def on_replica_read(self) -> None:
        """A dead peer's data was processed from a live replica."""
        self.replica_reads += 1

    def on_queue_wait(self, wait: int) -> None:
        """A message waited ``wait`` time units in a peer's service queue."""
        if wait > 0:
            self.queue_delay += wait

    def cancel(self, reason: str) -> None:
        """Stop this query: its still-queued events will be dropped."""
        self.cancelled = True
        self.cancel_reason = reason

    def note_time(self, now: int) -> None:
        if now > self.last_activity:
            self.last_activity = now

    def completeness(self) -> float:
        if self.restriction_volume <= 0.0:
            # A zero-volume restriction (point / degenerate region) offers
            # no denominator: any loss means completely unquantified.
            return 1.0 if self.unreachable_volume <= 0.0 else 0.0
        fraction = 1.0 - self.unreachable_volume / self.restriction_volume
        return max(0.0, min(1.0, fraction))

    def stats(self, latency: int) -> QueryStats:
        collected = QueryStats(
            latency=latency,
            processed=len(self.processed),
            forward_messages=self.forward_messages,
            response_messages=self.response_messages,
            answer_messages=self.answer_messages,
            tuples_shipped=self.tuples_shipped,
            queue_delay=self.queue_delay,
            timeouts=self.timeouts,
            retries=self.retries,
            reroutes=self.reroutes,
            dropped_messages=self.dropped_messages,
            ack_messages=self.ack_messages,
            unreachable_volume=self.unreachable_volume,
            regions_recovered=self.regions_recovered,
            replica_reads=self.replica_reads,
            completeness=self.completeness(),
        )
        if self.sink.enabled:
            self.sink.on_stats(collected)
        return collected
