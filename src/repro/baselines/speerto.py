"""SPEERTO: top-k over super-peer networks via k-skybands (Vlachou et
al. [17], Section 2.1).

Each node precomputes its *k-skyband* — the tuples dominated by fewer
than k others — once, offline; the max-oriented k-skyband of a partition
provably contains the partition's top-k for **every** monotone increasing
scoring function, so it is a query-independent summary.  Each super-peer
aggregates the skybands of its attached nodes (again reduced to a
k-skyband).  A query then touches only super-peers: the initiator's
super-peer collects the aggregated skybands of its backbone neighbors and
extracts the top-k.

Costs: the one-time precomputation (tuples shipped node -> super-peer) is
reported separately from the per-query cost (super-peers contacted, the
skyband tuples they return, two hops of latency on the clique backbone
plus the node's uplink).
"""

from __future__ import annotations

import numpy as np

from ..common.geometry import as_point
from ..common.scoring import ScoringFunction
from ..net.context import QueryResult, QueryStats
from ..overlays.superpeer import SuperPeerNetwork, SuperPeerNode
from ..queries.skyline import k_skyband_of_array

__all__ = ["precompute_skybands", "speerto_topk"]

_CACHE_KEY = "speerto_skyband"


def precompute_skybands(network: SuperPeerNetwork, k: int) -> int:
    """The offline phase: per-node skybands aggregated per super-peer.

    Returns the number of tuples shipped over node uplinks — SPEERTO's
    preprocessing cost.
    """
    shipped = 0
    for super_peer in network.super_peers:
        collected = []
        for node in super_peer.nodes:
            skyband = k_skyband_of_array(node.store.array, k, maximize=True)
            shipped += len(skyband)
            if len(skyband):
                collected.append(skyband)
        merged = (np.vstack(collected) if collected
                  else np.empty((0, network.dims)))
        super_peer.cache[_CACHE_KEY] = (
            k, k_skyband_of_array(merged, k, maximize=True))
    return shipped


def speerto_topk(network: SuperPeerNetwork, initiator: SuperPeerNode,
                 fn: ScoringFunction, k: int) -> QueryResult:
    """Answer a top-k query from the aggregated skybands.

    Requires :func:`precompute_skybands` with at least this ``k``.
    """
    home = initiator.super_peer
    answers = []
    tuples_shipped = 0
    contacted = 0
    for super_peer in network.super_peers:
        cached = super_peer.cache.get(_CACHE_KEY)
        if cached is None or cached[0] < k:
            raise RuntimeError(
                f"precompute_skybands(k>={k}) must run before queries")
        skyband = cached[1]
        if super_peer is not home:
            contacted += 1
            tuples_shipped += len(skyband)
        if len(skyband):
            answers.append(skyband)
    pool = np.vstack(answers) if answers else np.empty((0, network.dims))
    scores = fn.score_batch(pool) if len(pool) else np.empty(0)
    order = sorted(range(len(pool)),
                   key=lambda i: (-scores[i], as_point(pool[i])))[:k]
    answer = [(float(scores[i]), as_point(pool[i])) for i in order]
    stats = QueryStats(
        latency=1 + (1 if contacted else 0),  # uplink + one backbone hop
        processed=1 + contacted,
        forward_messages=1 + contacted,
        response_messages=contacted,
        answer_messages=1,
        tuples_shipped=tuples_shipped,
    )
    return QueryResult(answer=answer, stats=stats)
