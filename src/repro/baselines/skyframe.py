"""Skyframe: skyline processing via border peers (Wang et al. [19]).

As summarized in Section 2.2 of the RIPPLE paper: the querying peer
forwards the query to the *border peers* — peers responsible for a region
with minimum value in at least one dimension.  Once their local skylines
arrive, the initiator determines whether additional peers need to be
queried (any peer whose zone is not dominated by the skyline gathered so
far), queries them, and repeats until no further peers qualify; then it
computes the global skyline.

Skyframe applies to BATON and CAN; we implement it over CAN, whose
explicit zones make the border condition direct.  Rounds are synchronous:
each round's latency is the longest routing path of that round, rounds
run back to back.
"""

from __future__ import annotations

from ..common.geometry import Point, as_point
from ..net.context import QueryResult, QueryStats
from ..net.routing import greedy_route
from ..overlays.can import CanOverlay, CanPeer
from ..queries.skyline import merge_skylines, skyline_of_array

__all__ = ["skyframe_skyline"]


def skyframe_skyline(overlay: CanOverlay, initiator: CanPeer) -> QueryResult:
    """Distributed skyline via Skyframe; returns the sorted skyline."""
    border = [peer for peer in overlay.peers()
              if any(lo == 0.0 for lo in peer.zone.lo)]

    processed = {initiator.peer_id}
    skyline: list[Point] = []
    forward_messages = 0
    answer_messages = 0
    tuples_shipped = 0
    latency = 0

    def query_peers(peers) -> int:
        """One synchronous round: route to each peer, gather skylines."""
        nonlocal skyline, forward_messages, answer_messages, tuples_shipped
        round_latency = 0
        for peer in peers:
            if peer.peer_id in processed:
                continue
            processed.add(peer.peer_id)
            _, path = greedy_route(initiator, peer.zone.center)
            hops = len(path) - 1
            forward_messages += hops
            round_latency = max(round_latency, hops)
            local = [as_point(row)
                     for row in skyline_of_array(peer.store.array)]
            survivors = [p for p in merge_skylines(skyline, local)
                         if p in set(local)]
            skyline = merge_skylines(skyline, survivors)
            if survivors:
                answer_messages += 1
                tuples_shipped += len(survivors)
        return round_latency

    # Round 0: the initiator's own data, then the border peers.
    local = [as_point(row) for row in skyline_of_array(initiator.store.array)]
    skyline = merge_skylines(skyline, local)
    latency += query_peers(border)

    # Refinement rounds: query any peer whose zone could still contribute.
    while True:
        additional = [peer for peer in overlay.peers()
                      if peer.peer_id not in processed
                      and not any(peer.zone.dominated_by(s)
                                  for s in skyline)]
        if not additional:
            break
        latency += query_peers(additional)

    stats = QueryStats(
        latency=latency,
        processed=len(processed),
        forward_messages=forward_messages,
        response_messages=0,
        answer_messages=answer_messages,
        tuples_shipped=tuples_shipped,
    )
    return QueryResult(answer=sorted(skyline), stats=stats)
