"""The diversification baseline: incremental diversification over CAN.

Section 7.1: "we adapt the algorithm of [12] (Minack et al., incremental
diversification for very large sets: a streaming-based approach), termed
baseline, for a distributed setting based on CAN".  Each greedy step
streams the entire collection through the incremental diversifier; in the
distributed adaptation every CAN peer streams its local tuples (computing
its best marginal candidate) and the querying peer merges the per-peer
candidates.  Reaching every peer means flooding the CAN neighbor graph,
which is where the baseline's cost lives: congestion ~ network size per
greedy step.

The paper "forces both heuristic diversification algorithms to produce
the same result at each step", so this engine plugs into the very same
greedy driver (:func:`repro.queries.diversify.greedy_diversify`) as the
RIPPLE engine and differs only in how a single tuple diversification
query is processed.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..common.geometry import Point
from ..net.context import QueryStats
from ..overlays.can import CanOverlay, CanPeer
from ..queries.diversify import DiversificationObjective
from .naive import flood

__all__ = ["FloodingDiversifier"]


class FloodingDiversifier:
    """CAN-flooding engine for single tuple diversification queries."""

    def __init__(self, overlay: CanOverlay, initiator: CanPeer):
        self.overlay = overlay
        self.initiator = initiator

    def solve_single(self, objective: DiversificationObjective,
                     members: Sequence[Point], *, tau: float = math.inf,
                     exclude: Sequence[Point] = (), grow: bool = False
                     ) -> tuple[tuple[float, Point] | None, QueryStats]:
        reached, forward_messages = flood(self.initiator)
        best: tuple[float, Point] | None = None
        depth_max = 0
        for peer, depth in reached:
            depth_max = max(depth_max, depth)
            candidate = objective.best_local(
                peer.store, members, exclude or members, grow)
            if candidate is None:
                continue
            # Every peer holding any candidate reports its local best:
            # the baseline cannot prune with a threshold it discovers late.
            if best is None or (objective.candidate_key(*candidate)
                                < objective.candidate_key(*best)):
                best = candidate
        if best is not None and best[0] >= tau:
            best = None
        # The gather is a convergecast up the flood tree: each peer sends
        # one aggregate to its flood parent, and the initiator can only
        # start the next greedy step after the whole round trip.
        stats = QueryStats(
            latency=2 * depth_max,
            processed=len(reached),
            forward_messages=forward_messages,
            response_messages=max(0, len(reached) - 1),
            answer_messages=0,
            tuples_shipped=max(0, len(reached) - 1),
        )
        return best, stats
