"""Competitor methods: the systems the paper compares against
(Sections 2.1, 2.2, 7.1) plus the naive broadcast strawman."""

from .div_baseline import FloodingDiversifier
from .dsl import dsl_skyline
from .naive import broadcast_query, flood
from .skyframe import skyframe_skyline
from .speerto import precompute_skybands, speerto_topk
from .ssp import ssp_skyline

__all__ = [
    "FloodingDiversifier", "broadcast_query", "dsl_skyline", "flood",
    "precompute_skybands", "skyframe_skyline", "speerto_topk",
    "ssp_skyline",
]
