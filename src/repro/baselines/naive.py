"""The naive broadcast baseline (Section 1).

The strawman the introduction argues against: broadcast the query to the
entire network, have every peer return its locally qualifying tuples, and
derive the answer at the initiator.  Latency equals the initiator's
eccentricity in the overlay graph (optimal), but every peer processes
every query and local pruning is impossible.

Works over any overlay whose peers expose ``links()`` — the flood follows
the link graph with duplicate suppression, as a real broadcast would.
"""

from __future__ import annotations

from collections import deque

from ..core.framework import PeerLike
from ..core.handler import QueryHandler
from ..net.context import QueryResult, QueryStats

__all__ = ["broadcast_query", "flood"]


def flood(initiator: PeerLike) -> tuple[list[tuple[PeerLike, int]], int]:
    """BFS over the link graph: ``(peer, depth)`` pairs plus message count."""
    seen = {initiator.peer_id}
    order = [(initiator, 0)]
    queue = deque(order)
    messages = 0
    while queue:
        peer, depth = queue.popleft()
        for link in peer.links():
            messages += 1
            if link.peer.peer_id in seen:
                continue
            seen.add(link.peer.peer_id)
            entry = (link.peer, depth + 1)
            order.append(entry)
            queue.append(entry)
    return order, messages


def broadcast_query(initiator: PeerLike, handler: QueryHandler) -> QueryResult:
    """Naive processing of any rank query: flood, collect, merge."""
    reached, forward_messages = flood(initiator)
    answers = []
    answer_messages = 0
    tuples_shipped = 0
    latency = 0
    for peer, depth in reached:
        local_state = handler.compute_local_state(peer.store,
                                                  handler.initial_state())
        answer = handler.compute_local_answer(peer.store, local_state)
        size = handler.answer_size(answer)
        answers.append(answer)
        latency = max(latency, depth)
        if size > 0 and peer.peer_id != initiator.peer_id:
            answer_messages += 1
            tuples_shipped += size
    stats = QueryStats(
        latency=latency,
        processed=len(reached),
        forward_messages=forward_messages,
        response_messages=0,
        answer_messages=answer_messages,
        tuples_shipped=tuples_shipped,
    )
    return QueryResult(answer=handler.finalize(answers), stats=stats)
