"""DSL: parallel skylines over CAN (Wu et al. [20]).

As summarized in Section 2.2 of the RIPPLE paper: DSL builds a multicast
hierarchy rooted at the peer whose zone contains the lower-left corner of
the query constraint (the domain origin for an unconstrained skyline).
The hierarchy forwards only "downstream": a peer passes its partial
skyline to the abutting neighbors that come after it in the dominance
order, peers whose zones cannot dominate each other proceed in parallel,
and a neighbor whose whole zone is dominated by the partial skyline is not
queried at all.

The downstream relation: ``A -> B`` iff the zones abut along some axis
``i`` with ``B`` on the upper side and ``B.lo >= A.lo`` on every other
axis.  Along such an edge ``sum(zone.lo)`` strictly grows, so the relation
is acyclic and processing peers in ascending ``sum(zone.lo)`` is a valid
topological schedule; and every non-origin zone has a predecessor (the
zone containing the corner just below its ``lo``), so the hierarchy
reaches every peer that survives pruning — the properties DSL needs.

A peer processes one hop after the last of its upstream senders (it waits
for all of them, as DSL prescribes), so latency is the longest chain in
the forwarded sub-DAG; congestion counts the peers that process.
"""

from __future__ import annotations

import heapq

from ..common.geometry import Point, as_point
from ..net.context import QueryResult, QueryStats
from ..net.routing import greedy_route
from ..overlays.can import CanOverlay, CanPeer
from ..queries.skyline import merge_skylines, skyline_of_array

__all__ = ["dsl_skyline"]


def dsl_skyline(overlay: CanOverlay, initiator: CanPeer) -> QueryResult:
    """Distributed skyline via DSL; returns the sorted global skyline."""
    origin = (0.0,) * overlay.dims
    root, route_path = greedy_route(initiator, origin)
    route_hops = len(route_path) - 1

    arrival: dict[int, int] = {root.peer_id: route_hops}
    # incoming states are skylines already; fold them pairwise with the
    # vectorized merge so big-skyline workloads stay tractable
    incoming: dict[int, list[Point]] = {root.peer_id: []}
    answers: list[Point] = []
    answer_messages = 0
    tuples_shipped = 0
    forward_messages = route_hops
    latency = route_hops

    # Ascending sum(zone.lo) is a topological order of the downstream DAG.
    heap: list[tuple[float, int]] = [(sum(root.zone.lo), root.peer_id)]
    queued: dict[int, CanPeer] = {root.peer_id: root}
    done: set[int] = set()

    while heap:
        _, peer_id = heapq.heappop(heap)
        if peer_id in done:
            continue
        peer = queued[peer_id]
        done.add(peer_id)

        local_sky = [as_point(r) for r in skyline_of_array(peer.store.array)]
        state = merge_skylines(incoming[peer_id], local_sky)
        local_set = set(local_sky)
        survivors = [p for p in state if p in local_set]
        if survivors:
            answer_messages += 1
            tuples_shipped += len(survivors)
            answers.extend(survivors)
        latency = max(latency, arrival[peer_id])

        for neighbor in _downstream(peer):
            if neighbor.peer_id in done:
                continue
            if any(neighbor.zone.dominated_by(s) for s in state):
                continue
            forward_messages += 1
            tuples_shipped += len(state)
            incoming[neighbor.peer_id] = merge_skylines(
                incoming.get(neighbor.peer_id, []), state)
            arrival[neighbor.peer_id] = max(
                arrival.get(neighbor.peer_id, 0), arrival[peer_id] + 1)
            if neighbor.peer_id not in queued:
                queued[neighbor.peer_id] = neighbor
                heapq.heappush(heap,
                               (sum(neighbor.zone.lo), neighbor.peer_id))

    processed = len(done) + (0 if initiator.peer_id in done else 1)
    stats = QueryStats(
        latency=latency,
        processed=processed,
        forward_messages=forward_messages,
        response_messages=0,
        answer_messages=answer_messages,
        tuples_shipped=tuples_shipped,
    )
    return QueryResult(answer=_final_skyline(answers, overlay.dims),
                       stats=stats)


def _final_skyline(answers: list[Point], dims: int) -> list[Point]:
    """Collected survivors from parallel branches may still dominate each
    other; one vectorized pass reduces them to the global skyline."""
    import numpy as np

    if not answers:
        return []
    reduced = skyline_of_array(np.asarray(answers, dtype=float))
    return sorted({as_point(row) for row in reduced})


def _downstream(peer: CanPeer) -> list[CanPeer]:
    """Neighbors after ``peer`` in the dominance order (see module doc)."""
    out = []
    for adj in peer.neighbors():
        if adj.side <= 0:
            continue
        other = adj.peer.zone
        if all(other.lo[d] >= peer.zone.lo[d]
               for d in range(peer.zone.dims) if d != adj.axis):
            out.append(adj.peer)
    return out
