"""SSP: Skyline Space Partitioning over BATON (Wang et al. [18]).

As summarized in Section 2.2 of the RIPPLE paper: the multi-dimensional
space is mapped to one-dimensional keys with a Z-curve (a BATON
limitation).  Query processing starts *only* at the peer responsible for
the region containing the origin of the data space; that peer computes the
local skyline points that belong to the global skyline and the most
dominating point, which the querying peer uses to refine the search space
and prune dominated peers.  The querying peer then forwards the query to
every peer that survives pruning and gathers their skyline sets.

Pruning a peer means proving its whole key range dominated: the range
decomposes into maximal Z-cells (rectangles), and the range is prunable
iff every cell is dominated by some already-known skyline point
(:meth:`Rect.dominated_by`).

Cost accounting mirrors the rest of the suite: latency counts the hops on
the critical path (route to the origin peer, then the parallel routed
fan-out), congestion counts peers that evaluate the query (relay peers
only forward and are accounted as messages).
"""

from __future__ import annotations

from ..common.geometry import as_point
from ..net.context import QueryResult, QueryStats
from ..overlays.baton import BatonOverlay, BatonPeer
from ..queries.skyline import merge_skylines, skyline_of_array

__all__ = ["ssp_skyline"]


def ssp_skyline(overlay: BatonOverlay, initiator: BatonPeer) -> QueryResult:
    """Distributed skyline via SSP; returns the sorted global skyline."""
    origin_peer, route_hops = overlay.route(initiator, 0)
    origin_sky = [as_point(row)
                  for row in skyline_of_array(origin_peer.store.array)]
    prune_set = origin_sky  # a local skyline is already an antichain

    processed = {initiator.peer_id, origin_peer.peer_id}
    answers = list(prune_set)
    forward_messages = route_hops
    answer_messages = 1 if prune_set else 0
    tuples_shipped = len(prune_set)
    fanout_latency = 0

    # The querying peer evaluates its own store locally (no routing).
    if initiator.peer_id != origin_peer.peer_id:
        local = [as_point(row)
                 for row in skyline_of_array(initiator.store.array)]
        answers.extend(p for p in merge_skylines(prune_set, local)
                       if p in set(local))

    for peer in overlay.peers():
        if peer.peer_id in processed:
            continue
        if _range_dominated(overlay, peer, prune_set):
            continue
        # The querying peer routes the query (with the pruning set) to the
        # surviving peer; the reply travels back directly.
        _, hops = overlay.route(initiator, peer.range_lo)
        forward_messages += hops
        fanout_latency = max(fanout_latency, hops)
        processed.add(peer.peer_id)
        local = [as_point(row) for row in skyline_of_array(peer.store.array)]
        survivors = [p for p in merge_skylines(prune_set, local)
                     if p in set(local)]
        if survivors:
            answer_messages += 1
            tuples_shipped += len(survivors)
            answers.extend(survivors)

    stats = QueryStats(
        latency=route_hops + fanout_latency,
        processed=len(processed),
        forward_messages=forward_messages,
        response_messages=0,
        answer_messages=answer_messages,
        tuples_shipped=tuples_shipped,
    )
    from .dsl import _final_skyline
    return QueryResult(answer=_final_skyline(answers, overlay.dims),
                       stats=stats)


def _range_dominated(overlay: BatonOverlay, peer: BatonPeer,
                     prune_set) -> bool:
    """True when every Z-cell of the peer's range is dominated."""
    if not prune_set:
        return False
    if peer.cached_cells is None:
        peer.cached_cells = overlay.zcurve.range_rects(
            peer.range_lo, peer.range_hi - 1)
    for cell in peer.cached_cells:
        if not any(cell.dominated_by(point) for point in prune_set):
            return False
    return True
