"""Dataset generators standing in for the paper's collections."""

from .mirflickr import MIRFLICKR_DIMS, mirflickr_dataset
from .nba import NBA_ATTRIBUTES, NBA_SIZE, nba_dataset, to_minimization
from .synth import anticorrelated, correlated, synth_clustered, uniform

__all__ = [
    "MIRFLICKR_DIMS", "NBA_ATTRIBUTES", "NBA_SIZE", "anticorrelated",
    "correlated", "mirflickr_dataset", "nba_dataset", "synth_clustered",
    "to_minimization", "uniform",
]
