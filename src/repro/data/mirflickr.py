"""MIRFLICKR-like image descriptors (substitution, see DESIGN.md).

The paper evaluates k-diversification on 1,000,000 MIRFLICKR images
described by the five-bucket MPEG-7 edge-histogram descriptor, compared
under the L1 norm.  We generate feature vectors with the same shape: five
non-negative bucket intensities per image, bounded by 1, arising from a
mixture of visual "styles" (Dirichlet clusters) scaled by a per-image edge
density — clustered, simplex-ish data just like aggregated edge
histograms.
"""

from __future__ import annotations

import numpy as np

__all__ = ["mirflickr_dataset", "MIRFLICKR_DIMS"]

MIRFLICKR_DIMS = 5

_EPS = 1e-9


def mirflickr_dataset(
    rng: np.random.Generator,
    n: int = 1_000_000,
    *,
    styles: int = 250,
) -> np.ndarray:
    """An ``(n, 5)`` array of synthetic edge-histogram descriptors.

    Each "style" is a Dirichlet concentration over the five edge
    orientations; an image draws its histogram from its style and scales
    it by an overall edge density in ``(0, 1]``.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    style_alphas = rng.gamma(2.0, 1.0, size=(styles, MIRFLICKR_DIMS)) + 0.2
    assignment = rng.integers(styles, size=n)
    histograms = np.empty((n, MIRFLICKR_DIMS))
    order = np.argsort(assignment, kind="stable")
    sorted_assignment = assignment[order]
    boundaries = np.searchsorted(sorted_assignment, np.arange(styles + 1))
    for style in range(styles):
        lo, hi = boundaries[style], boundaries[style + 1]
        if lo == hi:
            continue
        histograms[order[lo:hi]] = rng.dirichlet(style_alphas[style],
                                                 size=hi - lo)
    density = rng.beta(3.0, 2.0, size=(n, 1))
    return np.clip(histograms * density, 0.0, 1.0 - _EPS)
