"""NBA-like dataset (substitution for the paper's NBA collection).

The paper uses 22,000 six-dimensional tuples of NBA player-season
statistics (points, rebounds, assists, blocks, ... per game, 1946-2009)
from basketball-reference.com.  That file is not redistributable, so we
generate a *statistically similar* collection: per-game stat lines driven
by a latent player-quality factor, giving the positive cross-correlation
and heavy right tail real per-game statistics exhibit.  The experiments
only depend on those distributional properties (see DESIGN.md).

Attributes (per game): points, rebounds, assists, steals, blocks, minutes.
All attributes are normalized into ``[0, 1)`` with *higher = better*.
"""

from __future__ import annotations

import numpy as np

__all__ = ["nba_dataset", "to_minimization", "NBA_ATTRIBUTES", "NBA_SIZE"]

NBA_ATTRIBUTES = ("points", "rebounds", "assists", "steals", "blocks", "minutes")
NBA_SIZE = 22_000

# Roughly league-shaped per-game caps used for normalization.
_CAPS = np.array([40.0, 20.0, 12.0, 3.5, 4.5, 44.0])
# Per-attribute gamma shapes: small shape = heavier tail (blocks, steals).
_SHAPES = np.array([2.2, 2.0, 1.4, 1.6, 1.1, 4.0])
# Mean stat line of an average player, per game.
_MEANS = np.array([8.5, 3.8, 1.9, 0.7, 0.5, 20.0])

_EPS = 1e-9


def nba_dataset(rng: np.random.Generator, n: int = NBA_SIZE) -> np.ndarray:
    """An ``(n, 6)`` array of normalized player-season stat lines.

    A latent quality factor couples all attributes (stars score, rebound
    and play more minutes), and per-attribute gamma noise keeps specialists
    (e.g. high-block / low-assist centers) in the data — the structure that
    makes NBA skylines interesting.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    quality = rng.beta(2.0, 5.0, size=(n, 1)) * 2.4 + 0.2
    noise = rng.gamma(shape=_SHAPES, scale=1.0, size=(n, 6)) / _SHAPES
    stats = _MEANS * quality * noise
    normalized = stats / _CAPS
    return np.clip(normalized, 0.0, 1.0 - _EPS)


def to_minimization(array: np.ndarray) -> np.ndarray:
    """Flip a higher-is-better dataset for min-oriented skyline dominance.

    Our dominance convention (Section 5.1, lower values preferred) means
    the paper's "players who excel" skyline is the skyline of ``1 - x``.
    """
    return np.clip(1.0 - np.asarray(array, dtype=float), 0.0, 1.0 - _EPS)
