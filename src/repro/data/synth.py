"""SYNTH: clustered multi-dimensional data (Section 7.1).

The paper's synthetic collection: 1,000,000 records of dimensionality 2-10
in ``[0,1]^D``, generated around 50,000 cluster centers picked according to
a zipfian distribution with skewness 0.1.  Sizes, cluster counts and skew
are parameters here so tests and benchmarks can scale down while keeping
the same generator code path.

Also provides the three classic skyline data distributions (independent,
correlated, anti-correlated) used for extra coverage.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "synth_clustered",
    "uniform",
    "correlated",
    "anticorrelated",
]

_EPS = 1e-9


def _clip_unit(array: np.ndarray) -> np.ndarray:
    """Clamp into the half-open unit cube expected by zone membership."""
    return np.clip(array, 0.0, 1.0 - _EPS)


def synth_clustered(
    n: int,
    dims: int,
    *,
    clusters: int = 50_000,
    skew: float = 0.1,
    spread: float = 0.02,
    rng: np.random.Generator,
) -> np.ndarray:
    """The paper's SYNTH generator.

    Cluster centers are uniform in the domain; each record picks a center
    zipf-distributed with exponent ``skew`` (0.1 in the paper) and adds
    isotropic Gaussian noise of scale ``spread``.
    """
    if n <= 0 or dims <= 0:
        raise ValueError("n and dims must be positive")
    clusters = min(clusters, max(1, n))
    centers = rng.random((clusters, dims))
    ranks = np.arange(1, clusters + 1, dtype=float)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    assignment = rng.choice(clusters, size=n, p=weights)
    points = centers[assignment] + rng.normal(0.0, spread, size=(n, dims))
    return _clip_unit(points)


def uniform(n: int, dims: int, *, rng: np.random.Generator) -> np.ndarray:
    """Independent attributes, uniform in the unit cube."""
    return _clip_unit(rng.random((n, dims)))


def correlated(n: int, dims: int, *, rng: np.random.Generator,
               tightness: float = 0.1) -> np.ndarray:
    """Attributes positively correlated along the main diagonal.

    Tiny skylines: a tuple good in one dimension is good in all.
    """
    base = rng.random((n, 1))
    noise = rng.normal(0.0, tightness, size=(n, dims))
    return _clip_unit(base + noise)


def anticorrelated(n: int, dims: int, *, rng: np.random.Generator,
                   tightness: float = 0.05) -> np.ndarray:
    """Attributes trading off against each other: large skylines.

    Points concentrate near the hyperplane ``sum(x) = dims / 2``.
    """
    raw = rng.random((n, dims))
    target = dims / 2.0 + rng.normal(0.0, tightness * dims, size=(n, 1))
    sums = raw.sum(axis=1, keepdims=True)
    return _clip_unit(raw * (target / np.maximum(sums, 1e-12)))
